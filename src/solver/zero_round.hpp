// Deterministic 0-round white-algorithm existence in the Supported LOCAL
// model — the left-hand side of Theorem 3.2, decided directly.
//
// On support graph G (2-colored), a 0-round white algorithm is a function
// that, for every white node v and every possible set T of input edges at v
// (|T| <= Δ'), fixes output labels on the edges of T — it may depend on all
// of G (known to every node) but on nothing else. It solves Π on the class
// G' of input subgraphs with white degree <= Δ' and black degree <= r' if:
//   * whenever |T| = Δ', the outputs at (v, T) form a white configuration;
//   * for every realizable input graph in which a black node b has degree
//     exactly r', the labels output on b's edges (each determined by its
//     white endpoint's local input) form a black configuration.
//
// The decider encodes this as CNF over variables "output of (v,T) on e is
// l" and quantifies the black condition over all realizable neighborhood
// combinations. Theorem 3.2 asserts this decision is equivalent to
// solvability of lift_{Δ,r}(Π) on G — a property the test suite checks by
// running both deciders on a corpus of instances.
#pragma once

#include <cstdint>
#include <optional>

#include "src/formalism/problem.hpp"
#include "src/graph/bipartite.hpp"
#include "src/util/budget.hpp"

namespace slocal {

struct ZeroRoundStats {
  std::size_t variables = 0;
  std::size_t clauses = 0;
  std::size_t black_scenarios = 0;  // realizable (b, E_b, T_1..T_r') families
  /// kYes/kNo when decided; kExhausted when a budget tripped (scenario
  /// enumeration or the SAT solve stopped early). Without a budget the
  /// decision is always exact.
  Verdict verdict = Verdict::kNo;
};

/// Decides whether a deterministic 0-round white algorithm bipartitely
/// solving `pi` exists on support `g` for input graphs with white degree
/// <= pi.white_degree() and black degree <= pi.black_degree().
/// Exact when `budget` is null; a tripped budget returns false with
/// stats->verdict == kExhausted (never a wrong "does not exist").
bool zero_round_white_algorithm_exists(const BipartiteGraph& g, const Problem& pi,
                                       ZeroRoundStats* stats = nullptr,
                                       SearchBudget* budget = nullptr);

}  // namespace slocal
