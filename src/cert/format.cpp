#include "src/cert/format.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/formalism/serialize.hpp"

namespace slocal::cert {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Guard against absurd allocation requests from a crafted (checksum-valid)
/// file; every real certificate in this repository is far below these.
constexpr std::size_t kMaxProblems = 4096;
constexpr std::size_t kMaxVars = 1u << 24;

void write_clause(std::ostream& out, char tag, const std::vector<std::int32_t>& lits) {
  out << tag;
  for (const std::int32_t l : lits) out << ' ' << l;
  out << " 0\n";
}

/// Reads one `tag l1 … lk 0` clause line from the token stream.
bool read_clause(std::istream& in, const std::string& want_tags,
                 char* tag_out, std::vector<std::int32_t>* lits, std::string* error,
                 const std::string& what) {
  std::string tag;
  if (!(in >> tag) || tag.size() != 1 ||
      want_tags.find(tag[0]) == std::string::npos) {
    return fail(error, "cert: malformed " + what + " line");
  }
  *tag_out = tag[0];
  lits->clear();
  for (;;) {
    std::int32_t lit = 0;
    if (!(in >> lit)) return fail(error, "cert: unterminated " + what + " line");
    if (lit == 0) return true;
    lits->push_back(lit);
  }
}

void write_sequence(std::ostream& out, const SequenceCert& seq) {
  out << "kind sequence\n";
  out << "problems " << seq.problems.size() << '\n';
  for (const Problem& p : seq.problems) write_problem(out, p);
  out << "steps " << seq.steps.size() << '\n';
  for (std::size_t j = 0; j < seq.steps.size(); ++j) {
    const SequenceStepCert& s = seq.steps[j];
    out << "step " << (j + 1) << ' ' << hex16(s.prev_fingerprint) << ' '
        << hex16(s.re_fingerprint) << ' ' << hex16(s.next_fingerprint) << '\n';
    write_problem(out, s.re_problem);
    if (s.label_map.has_value()) {
      out << "witness label-map " << s.label_map->size() << '\n';
      out << 'm';
      for (const Label l : *s.label_map) out << ' ' << static_cast<unsigned>(l);
      out << '\n';
    } else {
      out << "witness config-mapping " << s.config_mapping->size() << '\n';
      for (const auto& [source, image] : *s.config_mapping) {
        out << 'c';
        for (const Label l : source.labels()) out << ' ' << static_cast<unsigned>(l);
        for (const Label l : image) out << ' ' << static_cast<unsigned>(l);
        out << '\n';
      }
    }
  }
}

void write_lift(std::ostream& out, const LiftUnsatCert& lift) {
  out << "kind lift-unsat\n";
  write_problem(out, lift.problem);
  out << "lift " << lift.big_delta << ' ' << lift.big_r << '\n';
  out << "support " << lift.white_count << ' ' << lift.black_count << ' '
      << lift.edges.size() << '\n';
  for (const auto& [w, b] : lift.edges) out << "e " << w << ' ' << b << '\n';
  out << "cnf " << lift.num_vars << ' ' << lift.proof.input_clauses.size() << ' '
      << hex16(lift.cnf_hash) << '\n';
  for (const auto& clause : lift.proof.input_clauses) write_clause(out, 'k', clause);
  out << "proof " << lift.proof.steps.size() << '\n';
  for (const DratStep& step : lift.proof.steps) {
    write_clause(out, step.is_delete ? 'd' : 'a', step.lits);
  }
  write_clause(out, 't', lift.target);
}

bool read_hex16(std::istream& in, std::uint64_t* out) {
  std::string token;
  if (!(in >> token) || token.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : token) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

bool read_sequence(std::istream& in, SequenceCert* seq, std::string* error) {
  std::string tag;
  std::size_t problem_count = 0;
  if (!(in >> tag >> problem_count) || tag != "problems") {
    return fail(error, "cert: malformed problem count");
  }
  if (problem_count < 2 || problem_count > kMaxProblems) {
    return fail(error, "cert: sequence needs 2.." + std::to_string(kMaxProblems) +
                           " problems");
  }
  seq->problems.reserve(problem_count);
  for (std::size_t i = 0; i < problem_count; ++i) {
    Problem p;
    if (!read_problem(in, "pi_" + std::to_string(i), &p, error, "cert")) return false;
    seq->problems.push_back(std::move(p));
  }
  std::size_t step_count = 0;
  if (!(in >> tag >> step_count) || tag != "steps") {
    return fail(error, "cert: malformed step count");
  }
  if (step_count != problem_count - 1) {
    return fail(error, "cert: step count does not match problem count");
  }
  seq->steps.reserve(step_count);
  for (std::size_t j = 0; j < step_count; ++j) {
    SequenceStepCert step;
    std::size_t index = 0;
    if (!(in >> tag >> index) || tag != "step" || index != j + 1) {
      return fail(error, "cert: malformed header of step " + std::to_string(j + 1));
    }
    if (!read_hex16(in, &step.prev_fingerprint) ||
        !read_hex16(in, &step.re_fingerprint) ||
        !read_hex16(in, &step.next_fingerprint)) {
      return fail(error,
                  "cert: malformed fingerprints of step " + std::to_string(j + 1));
    }
    if (!read_problem(in, "re_" + std::to_string(j), &step.re_problem, error,
                      "cert")) {
      return false;
    }
    const std::size_t next_alphabet = seq->problems[j + 1].alphabet_size();
    std::string witness_kind;
    std::size_t witness_size = 0;
    if (!(in >> tag >> witness_kind >> witness_size) || tag != "witness") {
      return fail(error,
                  "cert: malformed witness header of step " + std::to_string(j + 1));
    }
    if (witness_kind == "label-map") {
      if (witness_size != step.re_problem.alphabet_size()) {
        return fail(error, "cert: label map of step " + std::to_string(j + 1) +
                               " does not cover the RE alphabet");
      }
      std::string row;
      if (!(in >> row) || row != "m") {
        return fail(error,
                    "cert: malformed label map of step " + std::to_string(j + 1));
      }
      std::vector<Label> map(witness_size);
      for (std::size_t k = 0; k < witness_size; ++k) {
        unsigned v = 0;
        if (!(in >> v) || v >= next_alphabet) {
          return fail(error, "cert: label map entry out of range in step " +
                                 std::to_string(j + 1));
        }
        map[k] = static_cast<Label>(v);
      }
      step.label_map = std::move(map);
    } else if (witness_kind == "config-mapping") {
      const std::size_t degree = step.re_problem.white_degree();
      ConfigMapping mapping;
      for (std::size_t k = 0; k < witness_size; ++k) {
        std::string row;
        if (!(in >> row) || row != "c") {
          return fail(error, "cert: malformed config mapping row in step " +
                                 std::to_string(j + 1));
        }
        std::vector<Label> source(degree), image(degree);
        for (std::size_t d = 0; d < degree; ++d) {
          unsigned v = 0;
          if (!(in >> v) || v >= step.re_problem.alphabet_size()) {
            return fail(error, "cert: config mapping source label out of range "
                               "in step " +
                                   std::to_string(j + 1));
          }
          source[d] = static_cast<Label>(v);
        }
        for (std::size_t d = 0; d < degree; ++d) {
          unsigned v = 0;
          if (!(in >> v) || v >= next_alphabet) {
            return fail(error, "cert: config mapping image label out of range "
                               "in step " +
                                   std::to_string(j + 1));
          }
          image[d] = static_cast<Label>(v);
        }
        if (!mapping.emplace(Configuration(std::move(source)), std::move(image))
                 .second) {
          return fail(error, "cert: duplicate config mapping source in step " +
                                 std::to_string(j + 1));
        }
      }
      step.config_mapping = std::move(mapping);
    } else {
      return fail(error,
                  "cert: unknown witness kind '" + witness_kind + "' in step " +
                      std::to_string(j + 1));
    }
    seq->steps.push_back(std::move(step));
  }
  return true;
}

bool read_lift(std::istream& in, LiftUnsatCert* lift, std::string* error) {
  if (!read_problem(in, "pi", &lift->problem, error, "cert")) return false;
  std::string tag;
  if (!(in >> tag >> lift->big_delta >> lift->big_r) || tag != "lift" ||
      lift->big_delta == 0 || lift->big_r == 0 || lift->big_delta > 64 ||
      lift->big_r > 64) {
    return fail(error, "cert: malformed lift parameters");
  }
  std::size_t edge_count = 0;
  if (!(in >> tag >> lift->white_count >> lift->black_count >> edge_count) ||
      tag != "support") {
    return fail(error, "cert: malformed support header");
  }
  if (edge_count > lift->white_count * lift->black_count ||
      lift->white_count > kMaxVars || lift->black_count > kMaxVars) {
    return fail(error, "cert: support size out of range");
  }
  for (std::size_t i = 0; i < edge_count; ++i) {
    std::uint32_t w = 0, b = 0;
    if (!(in >> tag >> w >> b) || tag != "e" || w >= lift->white_count ||
        b >= lift->black_count) {
      return fail(error, "cert: malformed support edge");
    }
    lift->edges.emplace_back(w, b);
  }
  std::size_t clause_count = 0;
  if (!(in >> tag >> lift->num_vars >> clause_count) || tag != "cnf" ||
      lift->num_vars > kMaxVars) {
    return fail(error, "cert: malformed cnf header");
  }
  if (!read_hex16(in, &lift->cnf_hash)) {
    return fail(error, "cert: malformed cnf hash");
  }
  char clause_tag = 0;
  for (std::size_t i = 0; i < clause_count; ++i) {
    std::vector<std::int32_t> lits;
    if (!read_clause(in, "k", &clause_tag, &lits, error, "cnf clause")) return false;
    lift->proof.input_clauses.push_back(std::move(lits));
  }
  std::size_t step_count = 0;
  if (!(in >> tag >> step_count) || tag != "proof") {
    return fail(error, "cert: malformed proof header");
  }
  for (std::size_t i = 0; i < step_count; ++i) {
    DratStep step;
    if (!read_clause(in, "ad", &clause_tag, &step.lits, error, "proof step")) {
      return false;
    }
    step.is_delete = clause_tag == 'd';
    lift->proof.steps.push_back(std::move(step));
  }
  if (!read_clause(in, "t", &clause_tag, &lift->target, error, "target clause")) {
    return false;
  }
  return true;
}

}  // namespace

std::uint64_t lift_cnf_hash(std::size_t num_vars,
                            const std::vector<std::vector<std::int32_t>>& clauses) {
  std::ostringstream out;
  out << num_vars << ' ' << clauses.size() << '\n';
  for (const auto& clause : clauses) write_clause(out, 'k', clause);
  return fnv1a_bytes(out.str());
}

bool save_certificate(const Certificate& cert, const std::string& path,
                      std::string* error) {
  std::ostringstream out;
  if (cert.kind == CertKind::kSequence) {
    write_sequence(out, cert.sequence);
  } else {
    write_lift(out, cert.lift);
  }
  const std::string payload = out.str();
  std::ofstream file(path, std::ios::trunc | std::ios::binary);
  if (!file) return fail(error, "cert: cannot open '" + path + "' for writing");
  file << "slocal-cert 1\n"
       << "checksum " << hex16(fnv1a_bytes(payload)) << '\n'
       << payload;
  file.flush();
  if (!file) return fail(error, "cert: write to '" + path + "' failed");
  return true;
}

bool load_certificate(const std::string& path, Certificate* cert,
                      std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return fail(error, "cert: cannot open '" + path + "'");
  std::string line;
  if (!std::getline(file, line) || line != "slocal-cert 1") {
    return fail(error, "cert: '" + path + "' is not a slocal-cert 1 file");
  }
  if (!std::getline(file, line) || line.size() != 9 + 16 ||
      line.compare(0, 9, "checksum ") != 0) {
    return fail(error, "cert: malformed checksum line");
  }
  std::uint64_t stored_checksum = 0;
  {
    std::istringstream hex_in(line.substr(9));
    if (!read_hex16(hex_in, &stored_checksum)) {
      return fail(error, "cert: malformed checksum line");
    }
  }
  std::ostringstream raw;
  raw << file.rdbuf();
  const std::string payload = raw.str();
  if (fnv1a_bytes(payload) != stored_checksum) {
    return fail(error, "cert: payload checksum mismatch (corrupt file)");
  }

  std::istringstream in(payload);
  std::string tag, kind;
  if (!(in >> tag >> kind) || tag != "kind") {
    return fail(error, "cert: malformed kind line");
  }
  Certificate parsed;
  if (kind == "sequence") {
    parsed.kind = CertKind::kSequence;
    if (!read_sequence(in, &parsed.sequence, error)) return false;
  } else if (kind == "lift-unsat") {
    parsed.kind = CertKind::kLiftUnsat;
    if (!read_lift(in, &parsed.lift, error)) return false;
  } else {
    return fail(error, "cert: unknown certificate kind '" + kind + "'");
  }
  if (in >> tag) {
    return fail(error, "cert: trailing data after certificate");
  }
  *cert = std::move(parsed);
  return true;
}

}  // namespace slocal::cert
