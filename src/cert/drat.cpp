#include "src/cert/drat.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>

namespace slocal::cert {

namespace {

/// Dense index of a DIMACS literal: variable v (1-based) maps to 2(v-1),
/// its negation to 2(v-1)+1.
std::size_t lit_index(std::int32_t lit) {
  const std::size_t v = static_cast<std::size_t>(std::abs(lit));
  return 2 * (v - 1) + (lit < 0 ? 1 : 0);
}

std::vector<std::int32_t> sorted_set(std::vector<std::int32_t> lits) {
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  return lits;
}

/// The checker's whole state: an explicit clause set with occurrence lists,
/// and a single scratch assignment used (and fully undone) by every RUP
/// query. Deleted clauses stay in `clauses` with active = false so clause
/// ids in the occurrence lists never dangle.
class RupChecker {
 public:
  explicit RupChecker(std::size_t num_vars)
      : num_vars_(num_vars), occ_(2 * num_vars), value_(num_vars + 1, 0) {}

  bool lit_ok(std::int32_t lit) const {
    return lit != 0 && lit >= -static_cast<std::int32_t>(num_vars_) &&
           lit <= static_cast<std::int32_t>(num_vars_);
  }

  void add_clause(const std::vector<std::int32_t>& lits) {
    // Store the deduplicated set: a repeated literal is logically one, and
    // examine() would otherwise count it as two open slots and miss that
    // the clause is unit (e.g. the input clause "3 3 0"). Identity is by
    // literal set everywhere else already (by_set_), so nothing changes for
    // deletion matching; tautologies stay harmless (never unit, satisfied
    // the moment either side is assigned).
    std::vector<std::int32_t> set = sorted_set(lits);
    const std::size_t id = clauses_.size();
    for (const std::int32_t l : set) occ_[lit_index(l)].push_back(id);
    if (set.size() <= 1) seeds_.push_back(id);
    by_set_[set].push_back(id);
    clauses_.push_back(Clause{std::move(set), true});
  }

  /// Deactivates one active clause with exactly this literal set.
  bool remove_clause(const std::vector<std::int32_t>& lits) {
    const auto it = by_set_.find(sorted_set(lits));
    if (it == by_set_.end()) return false;
    for (std::size_t& id : it->second) {
      if (clauses_[id].active) {
        clauses_[id].active = false;
        std::swap(id, it->second.back());
        it->second.pop_back();
        return true;
      }
    }
    return false;
  }

  /// Reverse unit propagation: asserts the negation of every literal of
  /// `clause`, propagates to fixpoint over the active clauses, and reports
  /// whether a conflict was reached. The scratch assignment is always
  /// restored before returning.
  bool rup(const std::vector<std::int32_t>& clause) {
    bool conflict = false;
    for (const std::int32_t lit : clause) {
      if (!assign(-lit)) {
        conflict = true;  // clause is a tautology or repeats a refuted literal
        break;
      }
    }
    // Clauses that are unit (or empty) as written propagate unconditionally
    // — the occurrence-driven loop below only wakes on falsified literals,
    // so these have to be seeded explicitly.
    for (std::size_t s = 0; !conflict && s < seeds_.size(); ++s) {
      conflict = !examine(seeds_[s]);
    }
    std::size_t head = 0;
    while (!conflict && head < trail_.size()) {
      const std::int32_t lit = trail_[head++];  // newly true: wake ~lit clauses
      for (const std::size_t id : occ_[lit_index(-lit)]) {
        if (!examine(id)) {
          conflict = true;
          break;
        }
      }
    }
    for (const std::int32_t lit : trail_) value_[std::abs(lit)] = 0;
    trail_.clear();
    return conflict;
  }

 private:
  struct Clause {
    std::vector<std::int32_t> lits;
    bool active = true;
  };

  std::int8_t value_of(std::int32_t lit) const {
    const std::int8_t v = value_[std::abs(lit)];
    return lit < 0 ? static_cast<std::int8_t>(-v) : v;
  }

  /// Makes `lit` true; false iff it is already false (a conflict).
  bool assign(std::int32_t lit) {
    std::int8_t& slot = value_[std::abs(lit)];
    const std::int8_t want = lit > 0 ? 1 : -1;
    if (slot == want) return true;
    if (slot != 0) return false;
    slot = want;
    trail_.push_back(lit);
    return true;
  }

  /// Propagates clause `id` under the current assignment: true = fine
  /// (satisfied, still open, or propagated a unit), false = conflicting.
  bool examine(std::size_t id) {
    const Clause& c = clauses_[id];
    if (!c.active) return true;
    std::int32_t unassigned = 0;
    std::size_t open = 0;
    for (const std::int32_t l : c.lits) {
      const std::int8_t v = value_of(l);
      if (v > 0) return true;  // satisfied
      if (v == 0) {
        unassigned = l;
        if (++open > 1) return true;  // two open literals: nothing to do
      }
    }
    if (open == 0) return false;       // fully falsified
    return assign(unassigned);         // unit: propagate (cannot fail: open)
  }

  std::size_t num_vars_;
  std::vector<Clause> clauses_;
  std::vector<std::vector<std::size_t>> occ_;  // literal index -> clause ids
  std::vector<std::size_t> seeds_;             // ids of size <= 1 clauses
  std::map<std::vector<std::int32_t>, std::vector<std::size_t>> by_set_;
  std::vector<std::int8_t> value_;  // 1-based by variable: -1/0/+1
  std::vector<std::int32_t> trail_;
};

}  // namespace

DratResult check_drat(const DratProof& proof, const std::vector<std::int32_t>& target,
                      std::size_t num_vars) {
  DratResult result;
  RupChecker checker(num_vars);
  for (std::size_t i = 0; i < proof.input_clauses.size(); ++i) {
    for (const std::int32_t l : proof.input_clauses[i]) {
      if (!checker.lit_ok(l)) {
        result.message =
            "drat: input clause " + std::to_string(i + 1) + " has a literal out of range";
        return result;
      }
    }
    checker.add_clause(proof.input_clauses[i]);
  }
  for (std::size_t i = 0; i < proof.steps.size(); ++i) {
    const DratStep& step = proof.steps[i];
    for (const std::int32_t l : step.lits) {
      if (!checker.lit_ok(l)) {
        result.message =
            "drat: step " + std::to_string(i + 1) + " has a literal out of range";
        return result;
      }
    }
    if (step.is_delete) {
      if (!checker.remove_clause(step.lits)) {
        result.message = "drat: deletion step " + std::to_string(i + 1) +
                         " matches no active clause";
        return result;
      }
    } else {
      if (!checker.rup(step.lits)) {
        result.message = "drat: addition step " + std::to_string(i + 1) +
                         " is not a reverse-unit-propagation consequence";
        return result;
      }
      checker.add_clause(step.lits);
    }
  }
  for (const std::int32_t l : target) {
    if (!checker.lit_ok(l)) {
      result.message = "drat: target clause has a literal out of range";
      return result;
    }
  }
  if (!checker.rup(target)) {
    result.message =
        "drat: target clause is not derived (not RUP over the final clause set)";
    return result;
  }
  result.valid = true;
  result.message = "drat: " + std::to_string(proof.steps.size()) + " steps verified";
  return result;
}

}  // namespace slocal::cert
