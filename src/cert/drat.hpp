// A from-scratch RUP/DRAT proof checker.
//
// Validates an UNSAT derivation emitted by SatSolver's proof logging — but
// shares no code with it: the only machinery here is unit propagation over
// an explicit clause set, re-implemented independently (occurrence lists and
// counters instead of the solver's two-watched-literal scheme, no conflict
// analysis, no heuristics). Every addition step is checked by *reverse unit
// propagation* (RUP): assert the negation of each of the step's literals,
// propagate to fixpoint over the active clauses, and demand a conflict.
// First-UIP learned clauses, assumption-core finalization clauses, and the
// empty clause of a root refutation are all RUP consequences, so a trace
// from a correct CDCL run always passes; a trace from a buggy or tampered
// run fails at a named step.
//
// Literals use the DIMACS convention (variable v as v+1, negation as minus)
// so the checker stays independent of src/sat/'s literal encoding.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace slocal::cert {

struct DratStep {
  bool is_delete = false;
  std::vector<std::int32_t> lits;  // empty + !is_delete = the empty clause
};

struct DratProof {
  std::vector<std::vector<std::int32_t>> input_clauses;
  std::vector<DratStep> steps;
};

struct DratResult {
  bool valid = false;
  std::string message;  // on failure: names the offending step
};

/// Checks that `proof` derives `target` from its input clauses: deletions
/// must match an active clause (same literal set), every addition must be
/// RUP over the clauses active at that point, and `target` must be RUP over
/// the final active set. `target` empty means a full refutation (the input
/// clauses are unsatisfiable); a non-empty target is the assumption-core
/// clause of an UNSAT-under-assumptions answer. Literals of value 0 or
/// magnitude above `num_vars` are rejected.
DratResult check_drat(const DratProof& proof, const std::vector<std::int32_t>& target,
                      std::size_t num_vars);

}  // namespace slocal::cert
