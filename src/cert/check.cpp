#include "src/cert/check.hpp"

#include <vector>

#include "src/cert/drat.hpp"
#include "src/formalism/canonical.hpp"
#include "src/formalism/relaxation.hpp"

namespace slocal::cert {

namespace {

CertCheckResult invalid(std::string message) {
  return CertCheckResult{CertStatus::kInvalid, std::move(message)};
}

CertCheckResult check_sequence(const SequenceCert& seq) {
  if (seq.steps.size() + 1 != seq.problems.size()) {
    return invalid("sequence: step count does not match problem count");
  }
  for (std::size_t j = 0; j < seq.steps.size(); ++j) {
    const SequenceStepCert& step = seq.steps[j];
    const std::string name = "step " + std::to_string(j + 1);
    if (canonical_fingerprint(seq.problems[j]) != step.prev_fingerprint) {
      return invalid(name + ": fingerprint of the previous problem does not match");
    }
    if (canonical_fingerprint(step.re_problem) != step.re_fingerprint) {
      return invalid(name + ": fingerprint of the recorded RE problem does not match");
    }
    if (canonical_fingerprint(seq.problems[j + 1]) != step.next_fingerprint) {
      return invalid(name + ": fingerprint of the next problem does not match");
    }
    if (step.label_map.has_value() == step.config_mapping.has_value()) {
      return invalid(name + ": expected exactly one relaxation witness");
    }
    const Problem& next = seq.problems[j + 1];
    if (step.label_map.has_value()) {
      if (!check_relaxation_label_map(step.re_problem, next, *step.label_map)) {
        return invalid(name + ": label-map witness is not a valid relaxation");
      }
    } else if (!check_relaxation_witness(step.re_problem, next,
                                         *step.config_mapping)) {
      return invalid(name + ": config-mapping witness is not a valid relaxation");
    }
  }
  return CertCheckResult{CertStatus::kValid,
                         "sequence: " + std::to_string(seq.steps.size()) +
                             " steps verified"};
}

CertCheckResult check_lift(const LiftUnsatCert& lift) {
  // The support's degrees must fit the lift parameters, or the claim "Π is
  // 0-round unsolvable on G via lift_{Δ,r}" is not even well-posed.
  std::vector<std::size_t> white_degree(lift.white_count, 0);
  std::vector<std::size_t> black_degree(lift.black_count, 0);
  for (const auto& [w, b] : lift.edges) {
    if (++white_degree[w] > lift.big_delta) {
      return invalid("lift: support white degree exceeds Delta");
    }
    if (++black_degree[b] > lift.big_r) {
      return invalid("lift: support black degree exceeds r");
    }
  }
  if (lift_cnf_hash(lift.num_vars, lift.proof.input_clauses) != lift.cnf_hash) {
    return invalid("lift: cnf hash mismatch (proof does not belong to this claim)");
  }
  if (!lift.target.empty()) {
    return invalid("lift: unsolvability requires an empty target clause");
  }
  const DratResult drat = check_drat(lift.proof, lift.target, lift.num_vars);
  if (!drat.valid) return invalid("lift: " + drat.message);
  return CertCheckResult{CertStatus::kValid, "lift: " + drat.message};
}

}  // namespace

CertCheckResult check_certificate(const Certificate& cert) {
  if (cert.kind == CertKind::kSequence) return check_sequence(cert.sequence);
  return check_lift(cert.lift);
}

}  // namespace slocal::cert
