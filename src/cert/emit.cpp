#include "src/cert/emit.hpp"

#include <utility>

#include "src/formalism/canonical.hpp"
#include "src/lift/lift.hpp"
#include "src/solver/cnf_encoding.hpp"

namespace slocal::cert {

std::optional<Certificate> make_sequence_certificate(
    const std::vector<Problem>& problems, const REOptions& options,
    SequenceReport* report) {
  SequenceReport local =
      verify_lower_bound_sequence(problems, options, /*keep_witnesses=*/true);
  const bool valid = local.valid;
  Certificate cert;
  cert.kind = CertKind::kSequence;
  if (valid) {
    cert.sequence.problems = problems;
    cert.sequence.steps.reserve(local.steps.size());
    for (const SequenceStepReport& step : local.steps) {
      SequenceStepCert out;
      out.prev_fingerprint = canonical_fingerprint(problems[step.index - 1]);
      out.next_fingerprint = canonical_fingerprint(problems[step.index]);
      out.re_problem = *step.re_problem;
      out.re_fingerprint = canonical_fingerprint(out.re_problem);
      out.label_map = step.relaxation_map;
      if (!out.label_map.has_value()) out.config_mapping = step.relaxation_mapping;
      cert.sequence.steps.push_back(std::move(out));
    }
  }
  if (report != nullptr) *report = std::move(local);
  if (!valid) return std::nullopt;
  return cert;
}

std::optional<Certificate> make_lift_unsat_certificate(const Problem& pi,
                                                       std::size_t big_delta,
                                                       std::size_t big_r,
                                                       const BipartiteGraph& g,
                                                       SearchBudget* budget,
                                                       bool inprocessing) {
  const LiftedProblem lift(pi, big_delta, big_r);
  const std::optional<Problem> psi = lift.materialize();
  if (!psi.has_value()) return std::nullopt;
  std::optional<LabelingCnf> cnf =
      encode_bipartite_labeling(g, *psi, budget, /*log_proof=*/true, inprocessing);
  if (!cnf.has_value()) return std::nullopt;
  if (cnf->solver.solve(/*conflict_budget=*/0, budget) != SatResult::kUnsat) {
    return std::nullopt;
  }

  Certificate cert;
  cert.kind = CertKind::kLiftUnsat;
  LiftUnsatCert& out = cert.lift;
  out.problem = pi;
  out.big_delta = big_delta;
  out.big_r = big_r;
  out.white_count = g.white_count();
  out.black_count = g.black_count();
  out.edges.reserve(g.edge_count());
  for (const BiEdge& e : g.edges()) out.edges.emplace_back(e.white, e.black);
  out.num_vars = cnf->solver.var_count();
  const SatProof& proof = cnf->solver.proof();
  out.proof.input_clauses = proof.input_clauses;
  out.proof.steps.reserve(proof.steps.size());
  for (const SatProof::Step& step : proof.steps) {
    out.proof.steps.push_back(DratStep{step.is_delete, step.lits});
  }
  out.cnf_hash = lift_cnf_hash(out.num_vars, out.proof.input_clauses);
  // target stays empty: the claim is a full refutation of the CNF.
  return cert;
}

}  // namespace slocal::cert
