// The `slocal-cert 1` container format.
//
// A certificate is a self-contained, independently checkable record of one
// theorem claim:
//
//  * kind `sequence` — "Π_0, …, Π_k is a lower bound sequence". Per step it
//    carries the canonical fingerprints of Π_{i-1}, RE(Π_{i-1}) and Π_i,
//    the full RE(Π_{i-1}) problem, and the relaxation witness the search
//    found (a per-label map or an explicit configuration mapping).
//  * kind `lift-unsat` — "lift_{Δ,r}(Π) admits no solution on support G".
//    It carries Π, (Δ, r), G's edge list, the CNF the claim was decided on
//    (hash-bound to the emitting encoder), and a DRAT refutation.
//
// On disk the container is line-oriented text:
//
//   slocal-cert 1
//   checksum <16 hex digits>
//   <payload…>
//
// where the checksum is FNV-1a over every raw payload byte. load rejects
// any header or checksum deviation before interpreting a single payload
// token, so a corrupted file is always "malformed" (exit 2), never a
// half-parsed certificate. Semantic judgments (is the witness valid? does
// the proof check?) are src/cert/check.hpp's job, not load's.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/cert/drat.hpp"
#include "src/formalism/problem.hpp"
#include "src/formalism/relaxation.hpp"

namespace slocal::cert {

enum class CertKind { kSequence, kLiftUnsat };

/// One verified step of a lower bound sequence: Π_i relaxes RE(Π_{i-1}).
struct SequenceStepCert {
  std::uint64_t prev_fingerprint = 0;  // canonical fingerprint of Π_{i-1}
  std::uint64_t re_fingerprint = 0;    // … of RE(Π_{i-1}) as recorded below
  std::uint64_t next_fingerprint = 0;  // … of Π_i
  Problem re_problem;                  // RE(Π_{i-1}) as the engine computed it
  /// Exactly one of the two witnesses is engaged.
  std::optional<std::vector<Label>> label_map;     // per RE-label image in Π_i
  std::optional<ConfigMapping> config_mapping;     // per white configuration
};

struct SequenceCert {
  std::vector<Problem> problems;        // Π_0 … Π_k
  std::vector<SequenceStepCert> steps;  // k steps, step j checks Π_{j+1}
};

struct LiftUnsatCert {
  Problem problem;  // Π
  std::size_t big_delta = 0;
  std::size_t big_r = 0;
  std::size_t white_count = 0;
  std::size_t black_count = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;  // (white, black)
  std::size_t num_vars = 0;
  std::uint64_t cnf_hash = 0;  // binds `proof.input_clauses` to the encoder
  DratProof proof;             // inputs = the lift CNF, steps = the refutation
  std::vector<std::int32_t> target;  // empty: full refutation
};

struct Certificate {
  CertKind kind = CertKind::kSequence;
  SequenceCert sequence;  // meaningful iff kind == kSequence
  LiftUnsatCert lift;     // meaningful iff kind == kLiftUnsat
};

/// The CNF hash stored in (and recomputed against) lift-unsat certificates:
/// FNV-1a over variable count, clause count, and every clause's length and
/// literals in order.
std::uint64_t lift_cnf_hash(std::size_t num_vars,
                            const std::vector<std::vector<std::int32_t>>& clauses);

/// Writes `cert` to `path` in the container format above. False on I/O
/// failure (message in *error).
bool save_certificate(const Certificate& cert, const std::string& path,
                      std::string* error);

/// Reads and structurally validates a certificate: header, checksum, token
/// grammar, and every range constraint (labels within alphabets, literals
/// nonzero, exactly one witness per step, edge endpoints within the support,
/// no trailing data). False = malformed/corrupt, with a structured message;
/// *cert is only written on success.
bool load_certificate(const std::string& path, Certificate* cert,
                      std::string* error);

}  // namespace slocal::cert
