// Semantic validation of certificates (the "small trusted checker").
//
// Trust story — what the checker re-derives and what it assumes:
//
//  * Relaxation witnesses are re-validated from the definition: every
//    configuration is mapped and membership-checked against the target
//    constraints (check_relaxation_label_map / check_relaxation_witness).
//    The relaxation *search* is never re-run and none of its code is
//    trusted.
//  * DRAT proofs are re-validated by reverse unit propagation only
//    (src/cert/drat.hpp) — no CDCL code is shared with the solver.
//  * Canonical fingerprints are recomputed from the stored problems and
//    compared against the recorded ones, binding the steps of a sequence
//    together and pinning the certificate to the canonicalization the
//    emitting build used.
//  * Two bindings are *assumed*, not re-derived: that RE(Π_{i-1}) stored in
//    a sequence step really is the round elimination of Π_{i-1} (the RE
//    engine is cross-checked separately by the differential-testing
//    oracle), and that a lift-unsat certificate's CNF really encodes
//    "lift_{Δ,r}(Π) solvable on G" (re-deriving it would pull the whole
//    encoder into the trusted base; the stored hash instead pins the CNF to
//    the emitting encoder, so the proof cannot be swapped under the claim).
//
// check_certificate never answers "malformed" — structural damage is
// load_certificate's job (exit 2); this layer decides valid (exit 0)
// versus invalid (exit 1), with a message naming the failing step.
#pragma once

#include <string>

#include "src/cert/format.hpp"

namespace slocal::cert {

enum class CertStatus { kValid, kInvalid };

struct CertCheckResult {
  CertStatus status = CertStatus::kInvalid;
  std::string message;  // names the failing step on kInvalid
};

CertCheckResult check_certificate(const Certificate& cert);

}  // namespace slocal::cert
