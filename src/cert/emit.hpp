// Certificate emission — the *untrusted* side of the certificate story.
//
// These builders run the regular engines (round elimination + relaxation
// search for sequences, the lift encoder + CDCL solver for unsolvability)
// and package their byproducts — witnesses, fingerprints, DRAT traces —
// into the container of src/cert/format.hpp. Everything here may be as
// buggy as the engines themselves; the point is that the output is checked
// by src/cert/check.hpp, which shares no search code with any of it.
//
// This header lives in the cert/ directory but links against re/ and
// solver/ (the umbrella `slocal` library); the standalone cert_check binary
// must not — and does not — include it.
#pragma once

#include <optional>

#include "src/cert/format.hpp"
#include "src/graph/bipartite.hpp"
#include "src/re/round_elimination.hpp"
#include "src/re/sequence.hpp"

namespace slocal::cert {

/// Verifies `problems` as a lower bound sequence (witnesses kept) and packs
/// a sequence certificate. nullopt when the sequence does not verify —
/// refuted or budget-exhausted, see *report (filled when non-null) — since
/// an unverified claim has no certificate.
std::optional<Certificate> make_sequence_certificate(
    const std::vector<Problem>& problems, const REOptions& options = {},
    SequenceReport* report = nullptr);

/// Decides lift_{Δ,r}(pi) on `g` from scratch with DRAT logging armed and
/// packs a lift-unsat certificate. nullopt unless the answer is a definitive
/// kUnsat (a solvable or budget-exhausted instance has nothing to certify).
/// Certificate emission always re-encodes from scratch: the incremental
/// sweep interleaves many supports through one solver, which would tangle
/// their proofs together. `inprocessing` arms the solver's simplification
/// pipeline; every pass logs its additions and deletions to the DRAT trace,
/// so the emitted proof stays checkable either way (the CI cert job pins
/// both modes against the standalone checker).
std::optional<Certificate> make_lift_unsat_certificate(const Problem& pi,
                                                       std::size_t big_delta,
                                                       std::size_t big_r,
                                                       const BipartiteGraph& g,
                                                       SearchBudget* budget = nullptr,
                                                       bool inprocessing = true);

}  // namespace slocal::cert
