// Cross-step round-elimination cache keyed by canonical fingerprints.
//
// `verify_lower_bound_sequence` walks chains of problems that repeat up to
// renaming — by construction for the fixed-point chains of Lemma 5.4. The
// cache stores, per canonical input class, the canonical form of the RE
// output, so the second and later occurrences of a class skip the RE search
// entirely (0 DFS nodes). Values are stored in canonical form, which is
// itself a legal renaming of the true output: every downstream consumer
// (fixed-point checks, relaxation verdicts, size reports) is
// renaming-invariant.
//
// Thread-safe: one mutex guards the table and counters; lookups during a
// parallel sweep serialize only on the (cheap) probe, never on the RE
// computation itself. Opt-in disk persistence lets repeated `slocal_tool
// sequence` runs warm-start across processes.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/formalism/canonical.hpp"
#include "src/formalism/problem.hpp"

namespace slocal {

/// Snapshot of the cache's cumulative counters.
struct RECacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  /// Fingerprint matched but the canonical constraints did not (2^-64-ish;
  /// counted so a collision is observable rather than silent).
  std::uint64_t collisions = 0;
  std::size_t entries = 0;
};

class RECache {
 public:
  RECache() = default;
  RECache(const RECache&) = delete;
  RECache& operator=(const RECache&) = delete;

  /// Probes for the canonical input class. Returns the canonical RE output
  /// on a hit. Counts a hit/miss/collision either way.
  std::optional<Problem> lookup(const CanonicalForm& input);

  /// Records `canonical_result` (must be in canonical form) for the class of
  /// `input`. Idempotent: a class already present is left untouched.
  void insert(const CanonicalForm& input, const Problem& canonical_result);

  RECacheCounters counters() const;
  std::size_t size() const;

  /// Disk persistence: a line-oriented text format ("slocal-re-cache 2")
  /// carrying a whole-payload checksum, then each entry's fingerprint, a
  /// per-entry content checksum, and both problems' constraint structure
  /// (canonical registries are synthetic, so only structure is stored).
  /// `load` validates exhaustively — header, raw-byte payload checksum,
  /// counts, label ranges, per-entry checksum, and that the stored input
  /// really canonicalizes to its claimed fingerprint — and rejects the whole
  /// file (leaving the cache unchanged) on any mismatch, so a corrupt cache
  /// can never produce a wrong verdict. Every single byte flip anywhere in
  /// the file is detected (tests/fuzz_test.cpp flips them all). `save` is
  /// atomic — write-temp + fsync + rename, never truncate-in-place — so a
  /// process killed mid-save can leave the old complete file or the new
  /// complete file on disk, never a torn one (tests/serve_test.cpp kills a
  /// saving child at random offsets to pin this). Returns false with
  /// `*error` set on failure.
  bool save(const std::string& path, std::string* error = nullptr) const;
  bool load(const std::string& path, std::string* error = nullptr);

  /// The exact byte stream `save` persists (header, whole-payload checksum,
  /// entries). Exposed so checkpointing layers can control the write
  /// themselves (or deliberately tear it in fault-injection tests) while
  /// staying bit-compatible with `load`.
  std::string serialize() const;

 private:
  struct Entry {
    Problem input;   // canonical form of the RE input
    Problem result;  // canonical form of the RE output
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> table_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t collisions_ = 0;
  std::size_t entries_ = 0;
};

}  // namespace slocal
