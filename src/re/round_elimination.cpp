#include "src/re/round_elimination.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "src/formalism/diagram.hpp"
#include "src/util/combinatorics.hpp"

namespace slocal {

namespace {

std::string set_name(SmallBitset set, const LabelRegistry& reg) {
  std::vector<std::string> names;
  names.reserve(set.count());
  for (const std::size_t l : set.indices()) names.push_back(reg.name(static_cast<Label>(l)));
  std::string out = "(";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ' ';
    out += names[i];
  }
  out += ')';
  return out;
}

/// Is there a perfect matching pairing every set of `a` with a superset in
/// `b` (a and b same length)? Used for the domination (non-maximality) test.
bool superset_matching(const std::vector<SmallBitset>& a,
                       const std::vector<SmallBitset>& b) {
  const std::size_t n = a.size();
  std::vector<int> match_of_b(n, -1);
  std::vector<bool> visited;

  // Standard augmenting-path bipartite matching.
  auto augment = [&](auto&& self, std::size_t i) -> bool {
    for (std::size_t j = 0; j < n; ++j) {
      if (visited[j] || !b[j].contains(a[i])) continue;
      visited[j] = true;
      if (match_of_b[j] < 0 || self(self, static_cast<std::size_t>(match_of_b[j]))) {
        match_of_b[j] = static_cast<int>(i);
        return true;
      }
    }
    return false;
  };
  for (std::size_t i = 0; i < n; ++i) {
    visited.assign(n, false);
    if (!augment(augment, i)) return false;
  }
  return true;
}

/// A set-configuration: canonical (sorted by raw bits) multiset of subsets.
using SetConfig = std::vector<SmallBitset>;


/// Enumerates all maximal set-configurations of size `degree` over the
/// candidate subsets, where validity means every choice across the sets is
/// a configuration of `universal`. Returns nullopt if the cap is exceeded.
std::optional<std::vector<SetConfig>> maximal_set_configurations(
    const Constraint& universal, const std::vector<SmallBitset>& candidates,
    std::uint64_t max_configurations) {
  const std::size_t degree = universal.degree();
  std::vector<SetConfig> valid;

  // DFS over non-decreasing candidate indices; `partials` is the set of all
  // choice prefixes (canonical multisets), every one of which must extend to
  // a member of `universal`.
  struct Frame {
    std::vector<Configuration> partials;
  };
  std::vector<SmallBitset> chosen;

  auto extend_partials = [&](const std::vector<Configuration>& partials,
                             SmallBitset next_set,
                             std::vector<Configuration>& out) -> bool {
    std::unordered_set<Configuration> seen;
    out.clear();
    for (const auto& p : partials) {
      for (const std::size_t l : next_set.indices()) {
        Configuration q = p.with_added(static_cast<Label>(l));
        if (!universal.extendable(q)) return false;
        if (seen.insert(q).second) out.push_back(std::move(q));
      }
    }
    return true;
  };

  bool overflow = false;
  auto dfs = [&](auto&& self, std::size_t min_candidate,
                 const std::vector<Configuration>& partials) -> void {
    if (overflow) return;
    if (chosen.size() == degree) {
      valid.push_back(chosen);
      if (valid.size() > max_configurations) overflow = true;
      return;
    }
    std::vector<Configuration> next;
    for (std::size_t c = min_candidate; c < candidates.size(); ++c) {
      if (!extend_partials(partials, candidates[c], next)) continue;
      chosen.push_back(candidates[c]);
      self(self, c, next);
      chosen.pop_back();
      if (overflow) return;
    }
  };
  dfs(dfs, 0, std::vector<Configuration>{Configuration{}});
  if (overflow) return std::nullopt;

  // Maximality filter: drop configurations dominated by a different one.
  std::vector<SetConfig> maximal;
  for (std::size_t i = 0; i < valid.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < valid.size() && !dominated; ++j) {
      if (i == j || valid[i] == valid[j]) continue;
      dominated = superset_matching(valid[i], valid[j]);
    }
    if (!dominated) maximal.push_back(valid[i]);
  }
  // Deduplicate (valid already canonical & distinct by DFS construction).
  return maximal;
}

/// Shared core of R and R̄: hardens `universal`, relaxes `existential`.
std::optional<REStep> re_core(const Problem& pi, bool universal_is_black,
                              const REOptions& options) {
  if (pi.alphabet_size() > options.max_alphabet) return std::nullopt;
  const Constraint& universal = universal_is_black ? pi.black() : pi.white();
  const Constraint& existential = universal_is_black ? pi.white() : pi.black();

  // Candidate subsets, restricted to labels actually used by the universal
  // constraint (a set containing an unused label can never appear in a
  // valid all-choices configuration). By default only right-closed sets of
  // the universal diagram are considered: replacing any set of a valid
  // configuration by its right-closure keeps all choices valid, so maximal
  // configurations use right-closed sets only.
  SmallBitset used;
  for (const Label l : universal.used_labels()) used.set(l);
  std::vector<SmallBitset> candidates;
  if (options.right_closed_candidates) {
    const Diagram diagram(universal, pi.alphabet_size());
    for (const SmallBitset s : diagram.right_closed_sets()) {
      if (used.contains(s)) candidates.push_back(s);
    }
  } else {
    const auto used_indices = used.indices();
    for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << used_indices.size());
         ++mask) {
      SmallBitset s;
      for (std::size_t i = 0; i < used_indices.size(); ++i) {
        if (mask & (std::uint64_t{1} << i)) s.set(used_indices[i]);
      }
      candidates.push_back(s);
    }
    std::sort(candidates.begin(), candidates.end());
  }

  const auto maximal =
      maximal_set_configurations(universal, candidates, options.max_configurations);
  if (!maximal) return std::nullopt;

  // New alphabet: subsets appearing in at least one maximal configuration.
  std::vector<SmallBitset> alphabet;
  for (const auto& config : *maximal) {
    for (const SmallBitset s : config) {
      if (std::find(alphabet.begin(), alphabet.end(), s) == alphabet.end()) {
        alphabet.push_back(s);
      }
    }
  }
  std::sort(alphabet.begin(), alphabet.end());

  LabelRegistry reg;
  for (const SmallBitset s : alphabet) reg.intern(set_name(s, pi.registry()));
  const auto set_index = [&](SmallBitset s) {
    return static_cast<Label>(
        std::lower_bound(alphabet.begin(), alphabet.end(), s) - alphabet.begin());
  };

  // Hardened side: the maximal configurations, as new-label multisets.
  Constraint hardened(universal.degree());
  for (const auto& config : *maximal) {
    std::vector<Label> labels;
    labels.reserve(config.size());
    for (const SmallBitset s : config) labels.push_back(set_index(s));
    hardened.add(Configuration(std::move(labels)));
  }

  // Relaxed side: all multisets over the new alphabet with >= 1 choice in
  // the existential constraint.
  const std::uint64_t projected =
      multiset_count(alphabet.size(), existential.degree());
  if (projected > options.max_configurations) return std::nullopt;
  Constraint relaxed(existential.degree());
  for_each_multiset(alphabet.size(), existential.degree(),
                    [&](const std::vector<std::size_t>& pick) {
                      std::vector<std::vector<std::size_t>> choices;
                      choices.reserve(pick.size());
                      for (const std::size_t p : pick) {
                        choices.push_back(alphabet[p].indices());
                      }
                      bool some = false;
                      for_each_choice(choices, [&](const std::vector<std::size_t>& ch) {
                        std::vector<Label> labels;
                        labels.reserve(ch.size());
                        for (const std::size_t l : ch) {
                          labels.push_back(static_cast<Label>(l));
                        }
                        if (existential.contains(Configuration(std::move(labels)))) {
                          some = true;
                          return false;  // stop: found a choice
                        }
                        return true;
                      });
                      if (some) {
                        std::vector<Label> labels;
                        labels.reserve(pick.size());
                        for (const std::size_t p : pick) {
                          labels.push_back(static_cast<Label>(p));
                        }
                        relaxed.add(Configuration(std::move(labels)));
                      }
                      return true;
                    });

  Constraint white = universal_is_black ? std::move(relaxed) : std::move(hardened);
  Constraint black = universal_is_black ? std::move(hardened) : std::move(relaxed);
  Problem out(universal_is_black ? "R(" + pi.name() + ")" : "Rbar(" + pi.name() + ")",
              std::move(reg), std::move(white), std::move(black));
  return REStep{std::move(out), std::move(alphabet)};
}

}  // namespace

std::optional<REStep> apply_R(const Problem& pi, const REOptions& options) {
  return re_core(pi, /*universal_is_black=*/true, options);
}

std::optional<REStep> apply_Rbar(const Problem& pi, const REOptions& options) {
  return re_core(pi, /*universal_is_black=*/false, options);
}

std::optional<Problem> round_eliminate(const Problem& pi, const REOptions& options) {
  const auto half = apply_R(pi, options);
  if (!half) return std::nullopt;
  auto full = apply_Rbar(half->problem, options);
  if (!full) return std::nullopt;
  Problem out = drop_unused_labels(full->problem);
  return Problem("RE(" + pi.name() + ")", out.registry(), out.white(), out.black());
}

bool is_fixed_point(const Problem& pi, const REOptions& options) {
  const auto re = round_eliminate(pi, options);
  if (!re) return false;
  return equivalent_up_to_renaming(*re, pi).has_value();
}

}  // namespace slocal
