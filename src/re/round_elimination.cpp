#include "src/re/round_elimination.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_set>

#include "src/formalism/canonical.hpp"
#include "src/formalism/diagram.hpp"
#include "src/re/re_cache.hpp"
#include "src/util/combinatorics.hpp"
#include "src/util/thread_pool.hpp"

namespace slocal {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

std::string set_name(SmallBitset set, const LabelRegistry& reg) {
  std::vector<std::string> names;
  names.reserve(set.count());
  for (const std::size_t l : set.indices()) names.push_back(reg.name(static_cast<Label>(l)));
  std::string out = "(";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ' ';
    out += names[i];
  }
  out += ')';
  return out;
}

/// Is there a perfect matching pairing every set of `a` with a superset in
/// `b` (a and b same length)? Used for the domination (non-maximality) test
/// and for the relaxed-side witness dominance test.
bool superset_matching(const std::vector<SmallBitset>& a,
                       const std::vector<SmallBitset>& b) {
  const std::size_t n = a.size();
  std::vector<int> match_of_b(n, -1);
  std::vector<bool> visited;

  // Standard augmenting-path bipartite matching.
  auto augment = [&](auto&& self, std::size_t i) -> bool {
    for (std::size_t j = 0; j < n; ++j) {
      if (visited[j] || !b[j].contains(a[i])) continue;
      visited[j] = true;
      if (match_of_b[j] < 0 || self(self, static_cast<std::size_t>(match_of_b[j]))) {
        match_of_b[j] = static_cast<int>(i);
        return true;
      }
    }
    return false;
  };
  for (std::size_t i = 0; i < n; ++i) {
    visited.assign(n, false);
    if (!augment(augment, i)) return false;
  }
  return true;
}

/// A set-configuration: canonical (sorted by raw bits) multiset of subsets.
using SetConfig = std::vector<SmallBitset>;

/// Extends every choice-prefix in `partials` by every label of `next_set`,
/// deduplicating; fails (returns false) as soon as a prefix stops being
/// extendable inside `universal`.
bool extend_partials(const Constraint& universal,
                     const std::vector<Configuration>& partials, SmallBitset next_set,
                     std::vector<Configuration>& out, REStats& stats) {
  std::unordered_set<Configuration> seen;
  out.clear();
  for (const auto& p : partials) {
    for (const std::size_t l : next_set.indices()) {
      Configuration q = p.with_added(static_cast<Label>(l));
      ++stats.extendable_calls;
      if (!universal.extendable(q)) return false;
      if (seen.insert(q).second) {
        out.push_back(std::move(q));
      } else {
        ++stats.partials_deduped;
      }
    }
  }
  return true;
}

/// Shared state of the (possibly fanned-out) hardened-side DFS.
struct DfsShared {
  const Constraint& universal;
  const std::vector<SmallBitset>& candidates;
  std::uint64_t max_configurations;
  SearchBudget* budget;  // may be null; charged one node per extension
  std::atomic<std::uint64_t> total{0};
  std::atomic<bool> overflow{false};
};

/// Serial DFS over non-decreasing candidate indices; `partials` is the set
/// of all choice prefixes (canonical multisets), every one of which must
/// extend to a member of `universal`. Appends completed configurations to
/// `out` in canonical DFS order.
void dfs_branch(DfsShared& shared, std::size_t min_candidate,
                std::vector<SmallBitset>& chosen,
                const std::vector<Configuration>& partials,
                std::vector<SetConfig>& out, REStats& stats) {
  if (shared.overflow.load(std::memory_order_relaxed)) return;
  if (chosen.size() == shared.universal.degree()) {
    out.push_back(chosen);
    if (shared.total.fetch_add(1, std::memory_order_relaxed) + 1 >
        shared.max_configurations) {
      shared.overflow.store(true, std::memory_order_relaxed);
    }
    return;
  }
  std::vector<Configuration> next;
  for (std::size_t c = min_candidate; c < shared.candidates.size(); ++c) {
    ++stats.dfs_nodes;
    if (shared.budget != nullptr && !shared.budget->charge()) return;
    if (!extend_partials(shared.universal, partials, shared.candidates[c], next, stats)) {
      continue;
    }
    chosen.push_back(shared.candidates[c]);
    dfs_branch(shared, c, chosen, next, out, stats);
    chosen.pop_back();
    if (shared.overflow.load(std::memory_order_relaxed)) return;
  }
}

/// Enumerates all valid set-configurations of size `degree` (before the
/// maximality filter). With a pool, fans out over top-level candidate
/// branches; branch outputs are concatenated in candidate order, which
/// reproduces the serial DFS order exactly. Returns nullopt on cap overflow.
std::optional<std::vector<SetConfig>> enumerate_valid_configs(
    const Constraint& universal, const std::vector<SmallBitset>& candidates,
    std::uint64_t max_configurations, ThreadPool* pool, SearchBudget* budget,
    REStats& stats) {
  DfsShared shared{universal, candidates, max_configurations, budget};
  const std::vector<Configuration> root{Configuration{}};
  std::vector<SetConfig> valid;

  if (universal.degree() == 0) {
    valid.push_back(SetConfig{});
    return valid;
  }

  if (pool == nullptr || candidates.size() < 2) {
    std::vector<SmallBitset> chosen;
    dfs_branch(shared, 0, chosen, root, valid, stats);
    if (shared.overflow.load()) return std::nullopt;
    return valid;
  }

  // One branch per top-level candidate; each task owns its output slot and
  // stats slot, so the merge below is deterministic.
  std::vector<std::vector<SetConfig>> slots(candidates.size());
  std::vector<REStats> branch_stats(candidates.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    tasks.push_back([&, c] {
      REStats& local = branch_stats[c];
      ++local.dfs_nodes;
      if (budget != nullptr && !budget->charge()) return;
      std::vector<Configuration> next;
      if (!extend_partials(universal, root, candidates[c], next, local)) return;
      std::vector<SmallBitset> chosen{candidates[c]};
      dfs_branch(shared, c, chosen, next, slots[c], local);
    });
  }
  pool->run_batch(std::move(tasks));

  for (const REStats& s : branch_stats) stats += s;
  if (shared.overflow.load()) return std::nullopt;
  std::size_t total = 0;
  for (const auto& s : slots) total += s.size();
  valid.reserve(total);
  for (auto& s : slots) {
    valid.insert(valid.end(), std::make_move_iterator(s.begin()),
                 std::make_move_iterator(s.end()));
  }
  return valid;
}

/// Maximality filter: drops configurations dominated by a different one.
/// Configurations are bucketed by signature (sorted multiset of set sizes):
/// a config can only be dominated by one whose signature is coordinatewise
/// >= and strictly larger somewhere (equal signatures force equality under
/// superset matching), and whose label union is a superset.
std::vector<SetConfig> maximality_filter(const std::vector<SetConfig>& valid,
                                         ThreadPool* pool, SearchBudget* budget,
                                         REStats& stats) {
  const std::size_t n = valid.size();
  if (n <= 1) return valid;

  using Signature = std::vector<unsigned char>;
  std::vector<Signature> sig(n);
  std::vector<SmallBitset> unions(n);
  for (std::size_t i = 0; i < n; ++i) {
    sig[i].reserve(valid[i].size());
    for (const SmallBitset s : valid[i]) {
      sig[i].push_back(static_cast<unsigned char>(s.count()));
      unions[i] |= s;
    }
    std::sort(sig[i].begin(), sig[i].end());
  }

  // Bucket indices by signature (std::map: deterministic iteration order).
  std::map<Signature, std::vector<std::size_t>> buckets;
  for (std::size_t i = 0; i < n; ++i) buckets[sig[i]].push_back(i);

  const auto pointwise_geq = [](const Signature& a, const Signature& b) {
    for (std::size_t k = 0; k < a.size(); ++k) {
      if (a[k] < b[k]) return false;
    }
    return true;
  };

  std::vector<char> dominated(n, 0);
  const auto scan = [&](std::size_t lo, std::size_t hi, REStats& local) {
    for (std::size_t i = lo; i < hi; ++i) {
      // One node per configuration scanned; a tripped budget leaves the
      // remaining flags unset, which the caller discards wholesale.
      if (budget != nullptr && !budget->charge()) return;
      bool dom = false;
      for (const auto& [key, members] : buckets) {
        if (dom) break;
        if (key == sig[i] || !pointwise_geq(key, sig[i])) continue;
        for (const std::size_t j : members) {
          if (!unions[j].contains(unions[i])) {
            ++local.domination_skipped;
            continue;
          }
          ++local.domination_tests;
          if (superset_matching(valid[i], valid[j])) {
            dom = true;
            break;
          }
        }
      }
      dominated[i] = dom ? 1 : 0;
    }
  };

  if (pool == nullptr || n < 64) {
    scan(0, n, stats);
  } else {
    const std::size_t chunks = (pool->workers() + 1) * 8;
    std::vector<REStats> chunk_stats(chunks);
    std::vector<std::function<void()>> tasks;
    std::size_t index = 0;
    for (std::size_t k = 0; k < chunks; ++k) {
      const std::size_t lo = n * k / chunks;
      const std::size_t hi = n * (k + 1) / chunks;
      if (lo == hi) continue;
      const std::size_t slot = index++;
      tasks.push_back([&, lo, hi, slot] { scan(lo, hi, chunk_stats[slot]); });
    }
    pool->run_batch(std::move(tasks));
    for (const REStats& s : chunk_stats) stats += s;
  }

  std::vector<SetConfig> maximal;
  for (std::size_t i = 0; i < n; ++i) {
    if (!dominated[i]) maximal.push_back(valid[i]);
  }
  return maximal;
}

/// Minimal witnesses for the relaxed-side scan: set-multisets known to admit
/// a choice in `existential`, derived from its members by covering each
/// label with the minimal alphabet sets containing it. Any multiset that
/// coordinatewise dominates a witness admits the same choice (monotonicity),
/// so the scan tests dominance before falling back to the choice DFS.
std::vector<std::vector<std::size_t>> seed_witnesses(
    const Constraint& existential, const std::vector<SmallBitset>& alphabet) {
  constexpr std::size_t kWitnessCap = 512;

  // minsets[l]: alphabet indices whose set contains l and is minimal (no
  // other containing set is a strict subset).
  std::vector<std::vector<std::size_t>> minsets(SmallBitset::kCapacity);
  for (std::size_t l = 0; l < SmallBitset::kCapacity; ++l) {
    std::vector<std::size_t> containing;
    for (std::size_t a = 0; a < alphabet.size(); ++a) {
      if (alphabet[a].test(l)) containing.push_back(a);
    }
    for (const std::size_t a : containing) {
      bool minimal = true;
      for (const std::size_t b : containing) {
        if (b != a && alphabet[a].contains(alphabet[b]) && alphabet[a] != alphabet[b]) {
          minimal = false;
          break;
        }
      }
      if (minimal) minsets[l].push_back(a);
    }
  }

  std::set<std::vector<std::size_t>> unique;
  bool capped = false;
  for (const Configuration& member : existential.sorted_members()) {
    // DFS over positions, choosing one minimal covering set per label;
    // canonicalize by sorting the index multiset.
    std::vector<std::size_t> pick(member.size());
    auto emit = [&](auto&& self, std::size_t pos) -> void {
      if (capped) return;
      if (pos == member.size()) {
        std::vector<std::size_t> sorted = pick;
        std::sort(sorted.begin(), sorted.end());
        unique.insert(std::move(sorted));
        if (unique.size() > kWitnessCap) capped = true;
        return;
      }
      for (const std::size_t a : minsets[member[pos]]) {
        pick[pos] = a;
        self(self, pos + 1);
      }
    };
    emit(emit, 0);
    if (capped) return {};  // too many to be useful: disable seeding
  }

  std::vector<std::vector<std::size_t>> witnesses(unique.begin(), unique.end());
  // Drop non-minimal witnesses: w2 is redundant if some other witness w1 is
  // coordinatewise dominated by it (any pick dominating w2 dominates w1).
  const auto to_sets = [&](const std::vector<std::size_t>& w) {
    std::vector<SmallBitset> sets;
    sets.reserve(w.size());
    for (const std::size_t a : w) sets.push_back(alphabet[a]);
    return sets;
  };
  std::vector<std::vector<SmallBitset>> witness_sets;
  witness_sets.reserve(witnesses.size());
  for (const auto& w : witnesses) witness_sets.push_back(to_sets(w));
  std::vector<std::vector<std::size_t>> minimal;
  for (std::size_t i = 0; i < witnesses.size(); ++i) {
    bool redundant = false;
    for (std::size_t j = 0; j < witnesses.size() && !redundant; ++j) {
      if (i != j && witnesses[i] != witnesses[j] &&
          superset_matching(witness_sets[j], witness_sets[i])) {
        redundant = true;
      }
    }
    if (!redundant) minimal.push_back(witnesses[i]);
  }
  return minimal;
}

/// Does the set-multiset `pick` (indices into `alphabet`) admit at least one
/// choice inside `existential`? DFS with memoized extendability pruning; at
/// full size extendability coincides with membership.
bool admits_choice(const Constraint& existential, const std::vector<SmallBitset>& alphabet,
                   const std::vector<std::size_t>& pick) {
  Configuration partial;
  auto dfs = [&](auto&& self, std::size_t pos) -> bool {
    if (pos == pick.size()) return true;
    for (const std::size_t l : alphabet[pick[pos]].indices()) {
      Configuration next = partial.with_added(static_cast<Label>(l));
      if (!existential.extendable(next)) continue;
      Configuration saved = std::move(partial);
      partial = std::move(next);
      const bool found = self(self, pos + 1);
      partial = std::move(saved);
      if (found) return true;
    }
    return false;
  };
  return dfs(dfs, 0);
}

/// Relaxed side: all multisets over the new alphabet with >= 1 choice in
/// the existential constraint. Witness seeding + memoized choice DFS; with
/// a pool the scan is chunked, each chunk filling its own flag range.
Constraint build_relaxed(const Constraint& existential,
                         const std::vector<SmallBitset>& alphabet, ThreadPool* pool,
                         SearchBudget* budget, REStats& stats) {
  const std::size_t degree = existential.degree();
  const auto picks = multisets_of_size(alphabet.size(), degree);
  stats.relaxed_multisets += picks.size();

  const auto witnesses = seed_witnesses(existential, alphabet);
  std::vector<std::vector<SmallBitset>> witness_sets;
  witness_sets.reserve(witnesses.size());
  for (const auto& w : witnesses) {
    std::vector<SmallBitset> sets;
    sets.reserve(w.size());
    for (const std::size_t a : w) sets.push_back(alphabet[a]);
    witness_sets.push_back(std::move(sets));
  }

  std::vector<char> admits(picks.size(), 0);
  const auto scan = [&](std::size_t lo, std::size_t hi, REStats& local) {
    std::vector<SmallBitset> pick_sets(degree);
    for (std::size_t i = lo; i < hi; ++i) {
      // One node per multiset; on a tripped budget the caller discards the
      // partially-filled flags.
      if (budget != nullptr && !budget->charge()) return;
      for (std::size_t k = 0; k < degree; ++k) pick_sets[k] = alphabet[picks[i][k]];
      bool some = false;
      for (const auto& w : witness_sets) {
        if (superset_matching(w, pick_sets)) {
          some = true;
          ++local.relaxed_witness_hits;
          break;
        }
      }
      if (!some) {
        ++local.relaxed_dfs_tests;
        some = admits_choice(existential, alphabet, picks[i]);
      }
      admits[i] = some ? 1 : 0;
    }
  };

  if (pool == nullptr || picks.size() < 256) {
    scan(0, picks.size(), stats);
  } else {
    const std::size_t chunks = (pool->workers() + 1) * 8;
    std::vector<REStats> chunk_stats(chunks);
    std::vector<std::function<void()>> tasks;
    std::size_t index = 0;
    for (std::size_t k = 0; k < chunks; ++k) {
      const std::size_t lo = picks.size() * k / chunks;
      const std::size_t hi = picks.size() * (k + 1) / chunks;
      if (lo == hi) continue;
      const std::size_t slot = index++;
      tasks.push_back([&, lo, hi, slot] { scan(lo, hi, chunk_stats[slot]); });
    }
    pool->run_batch(std::move(tasks));
    for (const REStats& s : chunk_stats) stats += s;
  }

  Constraint relaxed(degree);
  for (std::size_t i = 0; i < picks.size(); ++i) {
    if (!admits[i]) continue;
    std::vector<Label> labels;
    labels.reserve(degree);
    for (const std::size_t p : picks[i]) labels.push_back(static_cast<Label>(p));
    relaxed.add(Configuration(std::move(labels)));
  }
  return relaxed;
}

/// Shared core of R and R̄: hardens `universal`, relaxes `existential`.
std::optional<REStep> re_core(const Problem& pi, bool universal_is_black,
                              const REOptions& options) {
  if (pi.alphabet_size() > options.max_alphabet) return std::nullopt;
  const Constraint& universal = universal_is_black ? pi.black() : pi.white();
  const Constraint& existential = universal_is_black ? pi.white() : pi.black();

  const auto t_total = Clock::now();
  REStats local;

  // Budget composition: a finite max_nodes gets its own counter chained to
  // the caller's token (so the cap is per-application and deterministic),
  // and forces the serial path so the exhaustion point is too.
  SearchBudget node_cap;
  SearchBudget* budget = options.budget;
  std::size_t requested_threads = options.threads;
  if (options.max_nodes > 0) {
    node_cap.set_node_limit(options.max_nodes);
    if (options.budget != nullptr) node_cap.chain_to(options.budget);
    budget = &node_cap;
    requested_threads = 1;
  }
  const auto exhausted_bail = [&]() -> std::optional<REStep> {
    ++local.budget_exhausted;
    if (options.stats) *options.stats += local;
    return std::nullopt;
  };
  if (budget != nullptr && !budget->keep_going()) return exhausted_bail();

  const std::size_t threads = ThreadPool::resolve_threads(requested_threads);
  local.threads_used = threads;
  std::optional<ThreadPool> pool_storage;
  const auto pool = [&]() -> ThreadPool* {
    if (threads <= 1) return nullptr;
    if (!pool_storage) pool_storage.emplace(threads - 1);
    return &*pool_storage;
  };

  // Candidate subsets, restricted to labels actually used by the universal
  // constraint (a set containing an unused label can never appear in a
  // valid all-choices configuration). By default only right-closed sets of
  // the universal diagram are considered: replacing any set of a valid
  // configuration by its right-closure keeps all choices valid, so maximal
  // configurations use right-closed sets only.
  SmallBitset used;
  for (const Label l : universal.used_labels()) used.set(l);
  std::vector<SmallBitset> candidates;
  if (options.right_closed_candidates) {
    const Diagram diagram(universal, pi.alphabet_size());
    for (const SmallBitset s : diagram.right_closed_sets()) {
      if (used.contains(s)) candidates.push_back(s);
    }
  } else {
    const auto used_indices = used.indices();
    for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << used_indices.size());
         ++mask) {
      SmallBitset s;
      for (std::size_t i = 0; i < used_indices.size(); ++i) {
        if (mask & (std::uint64_t{1} << i)) s.set(used_indices[i]);
      }
      candidates.push_back(s);
    }
    std::sort(candidates.begin(), candidates.end());
  }

  // Hardened side. The extension index turns the per-prefix extendability
  // probe from a scan over all members into one hash lookup; it is built
  // before the fan-out so the parallel phase only ever reads it.
  const auto t_harden = Clock::now();
  if (!universal.extension_index_built() && universal.build_extension_index()) {
    ++local.extension_index_builds;
  }
  local.extension_index_entries += universal.extension_index_size();
  const auto valid = enumerate_valid_configs(universal, candidates,
                                             options.max_configurations,
                                             candidates.size() >= 8 ? pool() : nullptr,
                                             budget, local);
  if (budget != nullptr && budget->halted()) return exhausted_bail();
  if (!valid) {
    if (options.stats) *options.stats += local;
    return std::nullopt;
  }
  local.configs_enumerated += valid->size();
  local.harden_ms += ms_since(t_harden);

  const auto t_dominate = Clock::now();
  const std::vector<SetConfig> maximal =
      maximality_filter(*valid, valid->size() >= 64 ? pool() : nullptr, budget, local);
  local.dominate_ms += ms_since(t_dominate);
  if (budget != nullptr && budget->halted()) return exhausted_bail();

  // New alphabet: subsets appearing in at least one maximal configuration.
  std::unordered_set<SmallBitset> alphabet_set;
  for (const auto& config : maximal) {
    for (const SmallBitset s : config) alphabet_set.insert(s);
  }
  std::vector<SmallBitset> alphabet(alphabet_set.begin(), alphabet_set.end());
  std::sort(alphabet.begin(), alphabet.end());
  if (alphabet.size() > 255) {
    // Labels are uint8 indices; larger alphabets cannot be represented.
    if (options.stats) *options.stats += local;
    return std::nullopt;
  }

  LabelRegistry reg;
  for (const SmallBitset s : alphabet) reg.intern(set_name(s, pi.registry()));
  const auto set_index = [&](SmallBitset s) {
    return static_cast<Label>(
        std::lower_bound(alphabet.begin(), alphabet.end(), s) - alphabet.begin());
  };

  // Hardened side: the maximal configurations, as new-label multisets.
  Constraint hardened(universal.degree());
  for (const auto& config : maximal) {
    std::vector<Label> labels;
    labels.reserve(config.size());
    for (const SmallBitset s : config) labels.push_back(set_index(s));
    hardened.add(Configuration(std::move(labels)));
  }

  // Relaxed side.
  const std::uint64_t projected =
      multiset_count(alphabet.size(), existential.degree());
  if (projected > options.max_configurations) {
    if (options.stats) *options.stats += local;
    return std::nullopt;
  }
  const auto t_relax = Clock::now();
  if (!existential.extension_index_built() && existential.build_extension_index()) {
    ++local.extension_index_builds;
  }
  local.extension_index_entries += existential.extension_index_size();
  Constraint relaxed = build_relaxed(existential, alphabet,
                                     projected >= 256 ? pool() : nullptr, budget, local);
  local.relax_ms += ms_since(t_relax);
  if (budget != nullptr && budget->halted()) return exhausted_bail();

  local.total_ms += ms_since(t_total);
  if (options.stats) *options.stats += local;

  Constraint white = universal_is_black ? std::move(relaxed) : std::move(hardened);
  Constraint black = universal_is_black ? std::move(hardened) : std::move(relaxed);
  Problem out(universal_is_black ? "R(" + pi.name() + ")" : "Rbar(" + pi.name() + ")",
              std::move(reg), std::move(white), std::move(black));
  return REStep{std::move(out), std::move(alphabet)};
}

}  // namespace

REStats& REStats::operator+=(const REStats& other) {
  dfs_nodes += other.dfs_nodes;
  partials_deduped += other.partials_deduped;
  extendable_calls += other.extendable_calls;
  extension_index_entries += other.extension_index_entries;
  configs_enumerated += other.configs_enumerated;
  domination_tests += other.domination_tests;
  domination_skipped += other.domination_skipped;
  relaxed_multisets += other.relaxed_multisets;
  relaxed_witness_hits += other.relaxed_witness_hits;
  relaxed_dfs_tests += other.relaxed_dfs_tests;
  extension_index_builds += other.extension_index_builds;
  budget_exhausted += other.budget_exhausted;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  canonical_ms += other.canonical_ms;
  threads_used = std::max(threads_used, other.threads_used);
  harden_ms += other.harden_ms;
  dominate_ms += other.dominate_ms;
  relax_ms += other.relax_ms;
  total_ms += other.total_ms;
  return *this;
}

std::string REStats::to_string() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "threads=%zu | harden %.2f ms (dfs_nodes=%llu dedup=%llu extendable=%llu "
      "memo=%llu builds=%llu configs=%llu) | dominate %.2f ms (tests=%llu "
      "skipped=%llu) | relax %.2f ms (multisets=%llu witness=%llu dfs=%llu) | "
      "exhausted=%llu | cache hit=%llu miss=%llu canon %.2f ms | total %.2f ms",
      threads_used, harden_ms, static_cast<unsigned long long>(dfs_nodes),
      static_cast<unsigned long long>(partials_deduped),
      static_cast<unsigned long long>(extendable_calls),
      static_cast<unsigned long long>(extension_index_entries),
      static_cast<unsigned long long>(extension_index_builds),
      static_cast<unsigned long long>(configs_enumerated), dominate_ms,
      static_cast<unsigned long long>(domination_tests),
      static_cast<unsigned long long>(domination_skipped), relax_ms,
      static_cast<unsigned long long>(relaxed_multisets),
      static_cast<unsigned long long>(relaxed_witness_hits),
      static_cast<unsigned long long>(relaxed_dfs_tests),
      static_cast<unsigned long long>(budget_exhausted),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), canonical_ms, total_ms);
  return std::string(buf);
}

std::optional<REStep> apply_R(const Problem& pi, const REOptions& options) {
  return re_core(pi, /*universal_is_black=*/true, options);
}

std::optional<REStep> apply_Rbar(const Problem& pi, const REOptions& options) {
  return re_core(pi, /*universal_is_black=*/false, options);
}

std::optional<Problem> round_eliminate(const Problem& pi, const REOptions& options) {
  if (options.cache != nullptr) {
    const auto t_canon = Clock::now();
    const CanonicalForm key = canonicalize(pi);
    if (options.stats != nullptr) options.stats->canonical_ms += ms_since(t_canon);
    if (auto cached = options.cache->lookup(key)) {
      if (options.stats != nullptr) ++options.stats->cache_hits;
      // The cached value is the canonical form of RE of this renaming
      // class — a legal renaming of the true output. Only the derived name
      // is restored; no search runs at all.
      return Problem("RE(" + pi.name() + ")", cached->registry(),
                     cached->white(), cached->black());
    }
    if (options.stats != nullptr) ++options.stats->cache_misses;
    REOptions inner = options;
    inner.cache = nullptr;
    auto result = round_eliminate(pi, inner);
    if (result) {
      const auto t_store = Clock::now();
      const CanonicalForm value = canonicalize(*result);
      if (options.stats != nullptr) {
        options.stats->canonical_ms += ms_since(t_store);
      }
      options.cache->insert(key, value.problem);
    }
    return result;
  }
  const auto half = apply_R(pi, options);
  if (!half) return std::nullopt;
  auto full = apply_Rbar(half->problem, options);
  if (!full) return std::nullopt;
  // Move the pieces out of the intermediate problem rather than deep-copying
  // them; the Constraint move also carries the memoized extension index.
  Problem out = drop_unused_labels(full->problem);
  return Problem("RE(" + pi.name() + ")", std::move(out.registry()),
                 std::move(out.white()), std::move(out.black()));
}

bool is_fixed_point(const Problem& pi, const REOptions& options) {
  const auto re = round_eliminate(pi, options);
  if (!re) return false;
  return equivalent_up_to_renaming(*re, pi).has_value();
}

}  // namespace slocal
