// Lower bound sequences (Section 2).
//
// Π_0, ..., Π_k is a lower bound sequence when each Π_i is a relaxation of
// RE(Π_{i-1}). Combined with 0-round unsolvability of Π_k in Supported
// LOCAL (decided through lift, Theorem 3.2), Theorem B.2 turns the sequence
// into a min{2k, (g-4)/2}-round lower bound. This module verifies sequences
// mechanically: it computes RE(Π_{i-1}) with the engine and then searches
// for a relaxation witness to Π_i.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/formalism/problem.hpp"
#include "src/formalism/relaxation.hpp"
#include "src/re/round_elimination.hpp"

namespace slocal {

struct SequenceStepReport {
  std::size_t index = 0;          // i: checks Π_i against RE(Π_{i-1})
  bool re_computed = false;       // RE stayed within resource limits
  bool relaxation_found = false;  // Π_i is a relaxation of RE(Π_{i-1})
  /// True when RE aborted because a budget tripped (as opposed to the
  /// max_configurations / max_alphabet caps); re_computed is false then.
  bool re_budget_exhausted = false;
  /// Outcome of the relaxation search: kYes iff relaxation_found, kNo when
  /// the search space was exhausted without a witness, kExhausted when a
  /// budget tripped first (the step is unverified, not refuted).
  Verdict relaxation_verdict = Verdict::kNo;
  std::size_t re_alphabet = 0;
  std::size_t re_white_size = 0;
  std::size_t re_black_size = 0;
  std::uint64_t re_dfs_nodes = 0;       // hardened-DFS nodes spent on this step
  std::uint64_t relaxation_nodes = 0;   // relaxation-search nodes on this step
  /// True when REOptions::cache answered this step's RE application (then
  /// re_dfs_nodes is 0 — no search ran). Not printed by to_string, so cache
  /// on/off runs produce byte-identical reports.
  bool re_cache_hit = false;
  /// Witness material, captured only when verify_lower_bound_sequence is
  /// called with keep_witnesses = true (certificate emission): RE(Π_{i-1})
  /// as computed, and whichever relaxation witness the search found. None
  /// of this is printed by to_string, so reports stay byte-identical
  /// across the flag.
  std::optional<Problem> re_problem;
  std::optional<std::vector<Label>> relaxation_map;
  std::optional<ConfigMapping> relaxation_mapping;
};

struct SequenceReport {
  bool valid = false;  // every step verified
  std::vector<SequenceStepReport> steps;
  std::string to_string() const;
};

/// Verifies that `problems` is a lower bound sequence. Each step computes
/// RE(Π_{i-1}) and checks that Π_i is a relaxation of it (label-map check
/// first, bounded exact search as fallback). The relaxation searches inherit
/// options.threads and options.budget; a tripped budget marks the step
/// exhausted (report invalid) but never flips a verified/refuted verdict.
/// keep_witnesses additionally stores each step's RE problem and relaxation
/// witness in the report (for certificate emission); verdicts, counters,
/// and to_string output are identical either way.
SequenceReport verify_lower_bound_sequence(const std::vector<Problem>& problems,
                                           const REOptions& options = {},
                                           bool keep_witnesses = false);

/// Theorem B.2's bound from a sequence length and support girth:
/// min{2k, (g-4)/2} rounds (white algorithms, bipartite case).
double theorem_b2_bound(std::size_t k, std::size_t girth);

}  // namespace slocal
