// The round elimination operators R, R̄ and RE = R̄ ∘ R (Appendix B).
//
// R(Π) replaces the black constraint by its *maximal* set-configurations —
// multisets {L_1,...,L_dB} of non-empty label subsets such that every choice
// (l_1 ∈ L_1, ..., l_dB ∈ L_dB) lies in C_B, kept only if not dominated by
// another such multiset under coordinatewise inclusion (up to permutation) —
// and the white constraint by all set-multisets admitting at least one
// choice in C_W. R̄ is R with the white and black roles exchanged.
//
// Lemma B.1: a T-round white algorithm for Π (on high-girth supports)
// yields a (T-1)-round black algorithm for R(Π), and symmetrically for R̄;
// hence RE peels two rounds per application.
//
// Engine notes (this header documents the REOptions contract):
//  * `threads` — 0 uses every hardware thread, 1 forces the serial path,
//    n > 1 uses n-way parallelism (a work-stealing pool fans the hardened
//    DFS out over top-level candidate branches and chunks the domination
//    filter and relaxed-side scan). Output is bit-identical for every
//    thread count: workers fill pre-assigned slots that are merged in
//    canonical order, never racing on shared output.
//  * `stats` — optional REStats accumulator; counters and per-stage wall
//    times are *added* onto it (zero-initialize to measure one call, keep
//    accumulating across calls to profile a whole sequence).
//  * `max_configurations` / `max_alphabet` are unchanged from the serial
//    engine: hard resource caps, exceeded ⇒ nullopt.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/formalism/problem.hpp"
#include "src/util/bitset.hpp"
#include "src/util/budget.hpp"

namespace slocal {

class RECache;

/// Performance counters for one (or an accumulation of) R / R̄ application.
/// All counters are exact and deterministic for a given input; the *_ms
/// wall times are measured and vary run to run.
struct REStats {
  // Hardened side: DFS over candidate label-sets.
  std::uint64_t dfs_nodes = 0;            ///< candidate extensions attempted
  std::uint64_t partials_deduped = 0;     ///< duplicate choice-prefixes merged
  std::uint64_t extendable_calls = 0;     ///< prefix-extendability queries
  std::uint64_t extension_index_entries = 0;  ///< memoized prefixes built
  std::uint64_t configs_enumerated = 0;   ///< valid set-configs before maximality
  // Maximality (domination) filter.
  std::uint64_t domination_tests = 0;     ///< superset matchings actually run
  std::uint64_t domination_skipped = 0;   ///< candidate pairs pruned before matching
  // Relaxed side: some-choice scan over new-alphabet multisets.
  std::uint64_t relaxed_multisets = 0;    ///< set-multisets scanned
  std::uint64_t relaxed_witness_hits = 0; ///< admitted by a seeded minimal witness
  std::uint64_t relaxed_dfs_tests = 0;    ///< fell through to the choice DFS
  // Budgets.
  std::uint64_t extension_index_builds = 0;  ///< fresh index builds (cache misses)
  std::uint64_t budget_exhausted = 0;     ///< applications aborted by a budget
  // Cross-step RE cache (REOptions::cache; see src/re/re_cache.hpp).
  std::uint64_t cache_hits = 0;           ///< RE applications answered from cache
  std::uint64_t cache_misses = 0;         ///< cache probes that fell through
  double canonical_ms = 0.0;              ///< time spent canonicalizing for the cache
  // Execution.
  std::size_t threads_used = 0;           ///< max parallelism across merged calls
  double harden_ms = 0.0;
  double dominate_ms = 0.0;
  double relax_ms = 0.0;
  double total_ms = 0.0;

  REStats& operator+=(const REStats& other);
  /// One-line human-readable rendering.
  std::string to_string() const;
};

struct REOptions {
  /// Alphabets larger than this are rejected (the subset enumeration is
  /// exponential in |Σ|).
  std::size_t max_alphabet = 16;
  /// Hard cap on enumerated set-configurations (guards runaway cases).
  std::uint64_t max_configurations = 2'000'000;
  /// Candidate label-sets for the hardened side: true (default) restricts
  /// to right-closed sets of the universal diagram — sound because every
  /// maximal configuration consists of right-closed sets — false enumerates
  /// all non-empty subsets (the ablation baseline; same output, slower).
  bool right_closed_candidates = true;
  /// Parallelism: 0 = all hardware threads, 1 = serial, n = n-way.
  /// The result is identical for every value (see header comment).
  std::size_t threads = 0;
  /// Node cap per R / R̄ application (hardened-DFS extensions, domination
  /// scans, and relaxed-side multisets all count as nodes); 0 = unlimited.
  /// A finite cap forces the serial path so the exhaustion point is
  /// deterministic: the same input and cap either always complete with the
  /// identical result or always abort (nullopt, stats->budget_exhausted
  /// incremented) — never a wrong answer.
  std::uint64_t max_nodes = 0;
  /// Optional shared deadline/cancel token; tripping aborts the application
  /// with nullopt exactly like max_nodes. Unlike max_nodes it does not force
  /// the serial path — deadlines are inherently racy anyway.
  SearchBudget* budget = nullptr;
  /// Optional perf-counter accumulator (see REStats); may be nullptr.
  REStats* stats = nullptr;
  /// Optional cross-step RE cache (see src/re/re_cache.hpp). When set,
  /// `round_eliminate` keys the whole application by the input's canonical
  /// fingerprint: a hit returns the cached canonical output (a legal
  /// renaming of the true result) without running either half-step; a miss
  /// computes the normal result — bit-identical to the cache-off path — and
  /// stores its canonical form. apply_R / apply_Rbar never consult it.
  RECache* cache = nullptr;
};

/// Result of one half-step. `label_meaning[l]` is the subset of the *input*
/// problem's labels that the output label l denotes (label names render as
/// "(A B)" automatically).
struct REStep {
  Problem problem;
  std::vector<SmallBitset> label_meaning;
};

/// R: black side hardened to maximal all-choices configurations, white side
/// relaxed to some-choice configurations over the new alphabet.
std::optional<REStep> apply_R(const Problem& pi, const REOptions& options = {});

/// R̄: same with white and black exchanged.
std::optional<REStep> apply_Rbar(const Problem& pi, const REOptions& options = {});

/// RE(Π) = R̄(R(Π)), with unused labels dropped.
std::optional<Problem> round_eliminate(const Problem& pi, const REOptions& options = {});

/// True if RE(Π) and Π are the same problem up to label renaming — the
/// fixed-point property of Lemma 5.4.
bool is_fixed_point(const Problem& pi, const REOptions& options = {});

}  // namespace slocal
