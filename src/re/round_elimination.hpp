// The round elimination operators R, R̄ and RE = R̄ ∘ R (Appendix B).
//
// R(Π) replaces the black constraint by its *maximal* set-configurations —
// multisets {L_1,...,L_dB} of non-empty label subsets such that every choice
// (l_1 ∈ L_1, ..., l_dB ∈ L_dB) lies in C_B, kept only if not dominated by
// another such multiset under coordinatewise inclusion (up to permutation) —
// and the white constraint by all set-multisets admitting at least one
// choice in C_W. R̄ is R with the white and black roles exchanged.
//
// Lemma B.1: a T-round white algorithm for Π (on high-girth supports)
// yields a (T-1)-round black algorithm for R(Π), and symmetrically for R̄;
// hence RE peels two rounds per application.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/formalism/problem.hpp"
#include "src/util/bitset.hpp"

namespace slocal {

struct REOptions {
  /// Alphabets larger than this are rejected (the subset enumeration is
  /// exponential in |Σ|).
  std::size_t max_alphabet = 16;
  /// Hard cap on enumerated set-configurations (guards runaway cases).
  std::uint64_t max_configurations = 2'000'000;
  /// Candidate label-sets for the hardened side: true (default) restricts
  /// to right-closed sets of the universal diagram — sound because every
  /// maximal configuration consists of right-closed sets — false enumerates
  /// all non-empty subsets (the ablation baseline; same output, slower).
  bool right_closed_candidates = true;
};

/// Result of one half-step. `label_meaning[l]` is the subset of the *input*
/// problem's labels that the output label l denotes (label names render as
/// "(A B)" automatically).
struct REStep {
  Problem problem;
  std::vector<SmallBitset> label_meaning;
};

/// R: black side hardened to maximal all-choices configurations, white side
/// relaxed to some-choice configurations over the new alphabet.
std::optional<REStep> apply_R(const Problem& pi, const REOptions& options = {});

/// R̄: same with white and black exchanged.
std::optional<REStep> apply_Rbar(const Problem& pi, const REOptions& options = {});

/// RE(Π) = R̄(R(Π)), with unused labels dropped.
std::optional<Problem> round_eliminate(const Problem& pi, const REOptions& options = {});

/// True if RE(Π) and Π are the same problem up to label renaming — the
/// fixed-point property of Lemma 5.4.
bool is_fixed_point(const Problem& pi, const REOptions& options = {});

}  // namespace slocal
