#include "src/re/re_cache.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/formalism/serialize.hpp"
#include "src/util/atomic_file.hpp"

namespace slocal {

namespace {

std::uint64_t fnv1a_step(std::uint64_t h, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (v >> shift) & 0xFFu;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Content checksum of an entry: FNV-1a over the numeric stream of both
/// problems (sizes then sorted configurations). Detects any bit flip in the
/// structural payload of a persisted entry.
std::uint64_t entry_checksum(const Problem& input, const Problem& result) {
  std::uint64_t h = 14695981039346656037ULL;
  const auto add_problem = [&](const Problem& p) {
    h = fnv1a_step(h, p.alphabet_size());
    h = fnv1a_step(h, p.white_degree());
    h = fnv1a_step(h, p.black_degree());
    for (const Constraint* c : {&p.white(), &p.black()}) {
      h = fnv1a_step(h, c->size());
      for (const Configuration& cfg : c->sorted_members()) {
        for (const Label l : cfg.labels()) h = fnv1a_step(h, l);
      }
    }
  };
  add_problem(input);
  add_problem(result);
  return h;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::optional<Problem> RECache::lookup(const CanonicalForm& input) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = table_.find(input.fingerprint);
  if (it != table_.end()) {
    for (const Entry& entry : it->second) {
      if (same_constraints(entry.input, input.problem)) {
        ++hits_;
        return entry.result;
      }
    }
    ++collisions_;
  }
  ++misses_;
  return std::nullopt;
}

void RECache::insert(const CanonicalForm& input, const Problem& canonical_result) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry>& bucket = table_[input.fingerprint];
  for (const Entry& entry : bucket) {
    if (same_constraints(entry.input, input.problem)) return;
  }
  bucket.push_back(Entry{input.problem, canonical_result});
  ++insertions_;
  ++entries_;
}

RECacheCounters RECache::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  RECacheCounters c;
  c.hits = hits_;
  c.misses = misses_;
  c.insertions = insertions_;
  c.collisions = collisions_;
  c.entries = entries_;
  return c;
}

std::size_t RECache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

std::string RECache::serialize() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "entries " << entries_ << '\n';
  for (const auto& [fingerprint, bucket] : table_) {
    for (const Entry& entry : bucket) {
      char header[64];
      std::snprintf(header, sizeof(header), "entry %016llx %016llx\n",
                    static_cast<unsigned long long>(fingerprint),
                    static_cast<unsigned long long>(
                        entry_checksum(entry.input, entry.result)));
      out << header;
      write_problem(out, entry.input);
      write_problem(out, entry.result);
    }
  }
  // The header names the format, then a checksum line binds every byte of
  // the payload that follows (format version 2; version 1 had per-entry
  // checksums only, which left bytes outside the numeric stream — tags,
  // whitespace, the entry count — unprotected against bit flips).
  const std::string payload = out.str();
  char checksum_line[40];
  std::snprintf(checksum_line, sizeof(checksum_line), "checksum %016llx\n",
                static_cast<unsigned long long>(fnv1a_bytes(payload)));
  return "slocal-re-cache 2\n" + std::string(checksum_line) + payload;
}

bool RECache::save(const std::string& path, std::string* error) const {
  // Atomic replace: an interrupted save (SIGKILL, power cut, full disk)
  // must never leave a torn cache at `path` — load would reject it and the
  // next run would fail closed instead of warm-starting.
  std::string io_error;
  if (!write_file_atomic(path, serialize(), &io_error)) {
    return fail(error, "re-cache: " + io_error);
  }
  return true;
}

bool RECache::load(const std::string& path, std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return fail(error, "re-cache: cannot open '" + path + "'");
  std::string magic;
  if (!std::getline(file, magic)) {
    return fail(error, "re-cache: '" + path + "' is not a cache file");
  }
  if (magic != "slocal-re-cache 2") {
    return fail(error, magic.rfind("slocal-re-cache", 0) == 0
                           ? "re-cache: unsupported version ('" + magic + "')"
                           : "re-cache: '" + path + "' is not a cache file");
  }
  std::string checksum_text;
  if (!std::getline(file, checksum_text) ||
      checksum_text.size() != 9 + 16 ||
      checksum_text.compare(0, 9, "checksum ") != 0) {
    return fail(error, "re-cache: malformed checksum line");
  }
  std::uint64_t stored_checksum = 0;
  {
    std::istringstream hex(checksum_text.substr(9));
    if (!(hex >> std::hex >> stored_checksum)) {
      return fail(error, "re-cache: malformed checksum line");
    }
  }
  std::ostringstream raw;
  raw << file.rdbuf();
  const std::string payload = raw.str();
  if (fnv1a_bytes(payload) != stored_checksum) {
    return fail(error, "re-cache: payload checksum mismatch (corrupt file)");
  }

  std::istringstream in(payload);
  std::string tag;
  std::size_t count = 0;
  if (!(in >> tag >> count) || tag != "entries") {
    return fail(error, "re-cache: malformed entry count");
  }

  // Parse and validate everything before touching the live table, so a
  // corrupt file leaves the cache exactly as it was.
  std::vector<std::pair<CanonicalForm, Problem>> loaded;
  loaded.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t fingerprint = 0, checksum = 0;
    if (!(in >> tag >> std::hex >> fingerprint >> checksum >> std::dec) ||
        tag != "entry") {
      return fail(error, "re-cache: malformed entry header");
    }
    Problem input, result;
    if (!read_problem(in, "cached-input", &input, error, "re-cache")) return false;
    if (!read_problem(in, "cached-result", &result, error, "re-cache")) return false;
    if (entry_checksum(input, result) != checksum) {
      return fail(error, "re-cache: entry checksum mismatch (corrupt file)");
    }
    // The stored input must really be the canonical representative of its
    // claimed class: recanonicalize and compare. This pins the on-disk
    // format to the in-process canonicalization, so a cache produced by an
    // incompatible build is rejected instead of silently mis-keyed.
    CanonicalForm cf = canonicalize(input);
    if (cf.fingerprint != fingerprint || !same_constraints(cf.problem, input)) {
      return fail(error, "re-cache: entry is not in canonical form");
    }
    loaded.emplace_back(std::move(cf), std::move(result));
  }
  if (in >> tag) {
    return fail(error, "re-cache: trailing data after last entry");
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [cf, result] : loaded) {
    std::vector<Entry>& bucket = table_[cf.fingerprint];
    bool present = false;
    for (const Entry& entry : bucket) {
      if (same_constraints(entry.input, cf.problem)) {
        present = true;
        break;
      }
    }
    if (!present) {
      bucket.push_back(Entry{std::move(cf.problem), std::move(result)});
      ++entries_;
    }
  }
  return true;
}

}  // namespace slocal
