#include "src/re/re_cache.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

namespace slocal {

namespace {

std::uint64_t fnv1a_step(std::uint64_t h, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (v >> shift) & 0xFFu;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Content checksum of an entry: FNV-1a over the numeric stream of both
/// problems (sizes then sorted configurations). Detects any bit flip in the
/// structural payload of a persisted entry.
std::uint64_t entry_checksum(const Problem& input, const Problem& result) {
  std::uint64_t h = 14695981039346656037ULL;
  const auto add_problem = [&](const Problem& p) {
    h = fnv1a_step(h, p.alphabet_size());
    h = fnv1a_step(h, p.white_degree());
    h = fnv1a_step(h, p.black_degree());
    for (const Constraint* c : {&p.white(), &p.black()}) {
      h = fnv1a_step(h, c->size());
      for (const Configuration& cfg : c->sorted_members()) {
        for (const Label l : cfg.labels()) h = fnv1a_step(h, l);
      }
    }
  };
  add_problem(input);
  add_problem(result);
  return h;
}

void write_problem(std::ostream& out, const Problem& p) {
  out << "problem " << p.alphabet_size() << ' ' << p.white_degree() << ' '
      << p.black_degree() << ' ' << p.white().size() << ' ' << p.black().size()
      << '\n';
  const auto write_side = [&](char tag, const Constraint& c) {
    for (const Configuration& cfg : c.sorted_members()) {
      out << tag;
      for (const Label l : cfg.labels()) out << ' ' << static_cast<unsigned>(l);
      out << '\n';
    }
  };
  write_side('w', p.white());
  write_side('b', p.black());
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Parses one serialized problem; every count and label is range-checked.
bool read_problem(std::istream& in, const std::string& name, Problem* out,
                  std::string* error) {
  std::string tag;
  std::size_t n = 0, dw = 0, db = 0, nw = 0, nb = 0;
  if (!(in >> tag >> n >> dw >> db >> nw >> nb) || tag != "problem") {
    return fail(error, "re-cache: malformed problem header");
  }
  // Same cap as the parser's 64-label alphabet limit.
  if (n > 64) return fail(error, "re-cache: alphabet size out of range");
  if (dw == 0 || db == 0 || dw > 64 || db > 64) {
    return fail(error, "re-cache: degree out of range");
  }
  LabelRegistry reg;
  for (std::size_t c = 0; c < n; ++c) reg.intern(std::to_string(c));
  const auto read_side = [&](char want, std::size_t degree, std::size_t count,
                             Constraint* side) {
    *side = Constraint(degree);
    for (std::size_t i = 0; i < count; ++i) {
      std::string row_tag;
      if (!(in >> row_tag) || row_tag.size() != 1 || row_tag[0] != want) {
        return fail(error, "re-cache: malformed configuration row");
      }
      std::vector<Label> labels(degree);
      for (std::size_t k = 0; k < degree; ++k) {
        unsigned v = 0;
        if (!(in >> v) || v >= n) {
          return fail(error, "re-cache: label out of range");
        }
        labels[k] = static_cast<Label>(v);
      }
      if (!side->add(Configuration(std::move(labels)))) {
        return fail(error, "re-cache: duplicate configuration");
      }
    }
    return true;
  };
  Constraint white, black;
  if (!read_side('w', dw, nw, &white)) return false;
  if (!read_side('b', db, nb, &black)) return false;
  *out = Problem(name, std::move(reg), std::move(white), std::move(black));
  return true;
}

}  // namespace

std::optional<Problem> RECache::lookup(const CanonicalForm& input) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = table_.find(input.fingerprint);
  if (it != table_.end()) {
    for (const Entry& entry : it->second) {
      if (same_constraints(entry.input, input.problem)) {
        ++hits_;
        return entry.result;
      }
    }
    ++collisions_;
  }
  ++misses_;
  return std::nullopt;
}

void RECache::insert(const CanonicalForm& input, const Problem& canonical_result) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry>& bucket = table_[input.fingerprint];
  for (const Entry& entry : bucket) {
    if (same_constraints(entry.input, input.problem)) return;
  }
  bucket.push_back(Entry{input.problem, canonical_result});
  ++insertions_;
  ++entries_;
}

RECacheCounters RECache::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  RECacheCounters c;
  c.hits = hits_;
  c.misses = misses_;
  c.insertions = insertions_;
  c.collisions = collisions_;
  c.entries = entries_;
  return c;
}

std::size_t RECache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

bool RECache::save(const std::string& path, std::string* error) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "slocal-re-cache 1\n";
  out << "entries " << entries_ << '\n';
  for (const auto& [fingerprint, bucket] : table_) {
    for (const Entry& entry : bucket) {
      char header[64];
      std::snprintf(header, sizeof(header), "entry %016llx %016llx\n",
                    static_cast<unsigned long long>(fingerprint),
                    static_cast<unsigned long long>(
                        entry_checksum(entry.input, entry.result)));
      out << header;
      write_problem(out, entry.input);
      write_problem(out, entry.result);
    }
  }
  std::ofstream file(path, std::ios::trunc);
  if (!file) return fail(error, "re-cache: cannot open '" + path + "' for writing");
  file << out.str();
  file.flush();
  if (!file) return fail(error, "re-cache: write to '" + path + "' failed");
  return true;
}

bool RECache::load(const std::string& path, std::string* error) {
  std::ifstream file(path);
  if (!file) return fail(error, "re-cache: cannot open '" + path + "'");
  std::string magic;
  int version = 0;
  if (!(file >> magic >> version) || magic != "slocal-re-cache") {
    return fail(error, "re-cache: '" + path + "' is not a cache file");
  }
  if (version != 1) {
    return fail(error, "re-cache: unsupported version " + std::to_string(version));
  }
  std::string tag;
  std::size_t count = 0;
  if (!(file >> tag >> count) || tag != "entries") {
    return fail(error, "re-cache: malformed entry count");
  }

  // Parse and validate everything before touching the live table, so a
  // corrupt file leaves the cache exactly as it was.
  std::vector<std::pair<CanonicalForm, Problem>> loaded;
  loaded.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t fingerprint = 0, checksum = 0;
    if (!(file >> tag >> std::hex >> fingerprint >> checksum >> std::dec) ||
        tag != "entry") {
      return fail(error, "re-cache: malformed entry header");
    }
    Problem input, result;
    if (!read_problem(file, "cached-input", &input, error)) return false;
    if (!read_problem(file, "cached-result", &result, error)) return false;
    if (entry_checksum(input, result) != checksum) {
      return fail(error, "re-cache: entry checksum mismatch (corrupt file)");
    }
    // The stored input must really be the canonical representative of its
    // claimed class: recanonicalize and compare. This pins the on-disk
    // format to the in-process canonicalization, so a cache produced by an
    // incompatible build is rejected instead of silently mis-keyed.
    CanonicalForm cf = canonicalize(input);
    if (cf.fingerprint != fingerprint || !same_constraints(cf.problem, input)) {
      return fail(error, "re-cache: entry is not in canonical form");
    }
    loaded.emplace_back(std::move(cf), std::move(result));
  }
  if (file >> tag) {
    return fail(error, "re-cache: trailing data after last entry");
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [cf, result] : loaded) {
    std::vector<Entry>& bucket = table_[cf.fingerprint];
    bool present = false;
    for (const Entry& entry : bucket) {
      if (same_constraints(entry.input, cf.problem)) {
        present = true;
        break;
      }
    }
    if (!present) {
      bucket.push_back(Entry{std::move(cf.problem), std::move(result)});
      ++entries_;
    }
  }
  return true;
}

}  // namespace slocal
