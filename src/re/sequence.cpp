#include "src/re/sequence.hpp"

#include <algorithm>

#include "src/formalism/relaxation.hpp"

namespace slocal {

std::string SequenceReport::to_string() const {
  std::string out = valid ? "sequence: VALID\n" : "sequence: INVALID\n";
  for (const auto& s : steps) {
    out += "  step " + std::to_string(s.index) + ": re=" +
           (s.re_computed ? "ok" : (s.re_budget_exhausted ? "EXHAUSTED" : "FAILED")) +
           " relaxation=" +
           (s.relaxation_found
                ? "ok"
                : (s.relaxation_verdict == Verdict::kExhausted ? "EXHAUSTED"
                                                               : "MISSING")) +
           " |sigma|=" + std::to_string(s.re_alphabet) +
           " |W|=" + std::to_string(s.re_white_size) +
           " |B|=" + std::to_string(s.re_black_size) + "\n";
  }
  return out;
}

SequenceReport verify_lower_bound_sequence(const std::vector<Problem>& problems,
                                           const REOptions& options,
                                           bool keep_witnesses) {
  SequenceReport report;
  report.valid = true;
  for (std::size_t i = 1; i < problems.size(); ++i) {
    SequenceStepReport step;
    step.index = i;
    // Per-step stats land in a local accumulator first so the step report
    // can attribute budget consumption honestly, then merge into the
    // caller's accumulator (totals are unchanged).
    REOptions step_options = options;
    REStats local;
    step_options.stats = &local;
    const auto re = round_eliminate(problems[i - 1], step_options);
    step.re_dfs_nodes = local.dfs_nodes;
    step.re_budget_exhausted = local.budget_exhausted > 0;
    step.re_cache_hit = local.cache_hits > 0;
    if (options.stats != nullptr) *options.stats += local;
    if (re) {
      step.re_computed = true;
      step.re_alphabet = re->alphabet_size();
      step.re_white_size = re->white().size();
      step.re_black_size = re->black().size();
      // Cheap sufficient check first: a single per-label map (uncapped —
      // the bucketed search prunes failing instances quickly).
      RelaxationOptions map_options;
      map_options.node_budget = 0;
      map_options.threads = options.threads;
      map_options.budget = options.budget;
      const LabelMapResult by_map =
          find_relaxation_label_map(*re, problems[i], map_options);
      step.relaxation_nodes += by_map.nodes;
      step.relaxation_verdict = by_map.verdict;
      if (by_map.verdict == Verdict::kYes) {
        if (keep_witnesses) step.relaxation_map = by_map.map;
      } else {
        // Exact bounded search for a configuration mapping. This subsumes
        // the label-map check, so its verdict overrides kNo from above.
        RelaxationOptions witness_options;
        witness_options.threads = options.threads;
        witness_options.budget = options.budget;
        const WitnessResult by_witness =
            find_relaxation_witness(*re, problems[i], witness_options);
        step.relaxation_nodes += by_witness.nodes;
        step.relaxation_verdict = by_witness.verdict;
        if (keep_witnesses && by_witness.verdict == Verdict::kYes) {
          step.relaxation_mapping = by_witness.mapping;
        }
      }
      step.relaxation_found = step.relaxation_verdict == Verdict::kYes;
      if (keep_witnesses) step.re_problem = *re;
    }
    report.valid = report.valid && step.re_computed && step.relaxation_found;
    report.steps.push_back(step);
  }
  return report;
}

double theorem_b2_bound(std::size_t k, std::size_t girth) {
  const double from_girth = (static_cast<double>(girth) - 4.0) / 2.0;
  return std::min(2.0 * static_cast<double>(k), from_girth);
}

}  // namespace slocal
