#include "src/re/sequence.hpp"

#include <algorithm>

#include "src/formalism/relaxation.hpp"

namespace slocal {

std::string SequenceReport::to_string() const {
  std::string out = valid ? "sequence: VALID\n" : "sequence: INVALID\n";
  for (const auto& s : steps) {
    out += "  step " + std::to_string(s.index) + ": re=" +
           (s.re_computed ? "ok" : "FAILED") + " relaxation=" +
           (s.relaxation_found ? "ok" : "MISSING") + " |sigma|=" +
           std::to_string(s.re_alphabet) + " |W|=" + std::to_string(s.re_white_size) +
           " |B|=" + std::to_string(s.re_black_size) + "\n";
  }
  return out;
}

SequenceReport verify_lower_bound_sequence(const std::vector<Problem>& problems,
                                           const REOptions& options) {
  SequenceReport report;
  report.valid = true;
  for (std::size_t i = 1; i < problems.size(); ++i) {
    SequenceStepReport step;
    step.index = i;
    const auto re = round_eliminate(problems[i - 1], options);
    if (re) {
      step.re_computed = true;
      step.re_alphabet = re->alphabet_size();
      step.re_white_size = re->white().size();
      step.re_black_size = re->black().size();
      if (relaxation_label_map(*re, problems[i]).has_value()) {
        step.relaxation_found = true;
      } else if (find_relaxation(*re, problems[i]).has_value()) {
        step.relaxation_found = true;
      }
    }
    report.valid = report.valid && step.re_computed && step.relaxation_found;
    report.steps.push_back(step);
  }
  return report;
}

double theorem_b2_bound(std::size_t k, std::size_t girth) {
  const double from_girth = (static_cast<double>(girth) - 4.0) / 2.0;
  return std::min(2.0 * static_cast<double>(k), from_girth);
}

}  // namespace slocal
