// Canonical 0-round precomputations for the Supported LOCAL model.
//
// Every node knows the full support graph and all identifiers, so any
// deterministic function of (G, ids) can be evaluated by every node without
// communication and all nodes obtain the *same* result. These helpers are
// the preprocessing steps the Supported-model algorithms rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.hpp"

namespace slocal {

/// Canonical greedy coloring of the support graph: process nodes by
/// ascending uid, give each the smallest color unused by neighbors.
/// Deterministic in (G, uids); uses at most Δ+1 colors.
std::vector<std::uint32_t> canonical_greedy_coloring(
    const Graph& support, const std::vector<std::uint64_t>& uids);

/// Number of colors used by a coloring.
std::size_t color_count(const std::vector<std::uint32_t>& colors);

/// Canonical ID compaction: ranks of the uids (the paper's Section 3
/// remark: an ID space {1..n} is w.l.o.g. because all nodes know G and can
/// recompute a consistent assignment without communication).
std::vector<std::uint64_t> canonical_rank_ids(const std::vector<std::uint64_t>& uids);

}  // namespace slocal
