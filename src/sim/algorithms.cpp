#include "src/sim/algorithms.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "src/sim/supported.hpp"

namespace slocal {

namespace {

constexpr std::int64_t kJoined = 1;
constexpr std::int64_t kAccept = 2;

}  // namespace

// ---------------------------------------------------------------- MIS (S)

void ColorClassMis::announce(const NodeContext& node,
                             std::vector<Message>& out) const {
  for (std::size_t i = 0; i < node.incident.size(); ++i) {
    if (node.edge_in_input[i]) out[i] = {kJoined};
  }
}

void ColorClassMis::on_start(const NodeContext& node, std::vector<Message>& out,
                             bool& halt) {
  assert(node.support != nullptr && "ColorClassMis needs the Supported model");
  if (classes_.empty()) {
    classes_ = canonical_greedy_coloring(*node.support, *node.all_uids);
    in_mis_.assign(node.n, false);
    covered_.assign(node.n, false);
  }
  if (classes_[node.index] == 0) {
    in_mis_[node.index] = true;
    announce(node, out);
    halt = true;
  }
}

void ColorClassMis::on_round(const NodeContext& node, std::size_t round,
                             const std::vector<Message>& inbox,
                             std::vector<Message>& out, bool& halt) {
  for (std::size_t i = 0; i < inbox.size(); ++i) {
    if (node.edge_in_input[i] && !inbox[i].empty() && inbox[i][0] == kJoined) {
      covered_[node.index] = true;
    }
  }
  if (classes_[node.index] == round) {
    if (!covered_[node.index]) {
      in_mis_[node.index] = true;
      announce(node, out);
    }
    halt = true;
  }
}

// ------------------------------------------------------------- MIS (LOCAL)

void GreedyUidMis::on_start(const NodeContext& node, std::vector<Message>& out,
                            bool& halt) {
  if (state_.empty()) {
    state_.assign(node.n, State::kUndecided);
    in_mis_.assign(node.n, false);
  }
  const bool isolated = std::none_of(node.edge_in_input.begin(),
                                     node.edge_in_input.end(), [](bool b) { return b; });
  if (isolated) {
    state_[node.index] = State::kIn;
    in_mis_[node.index] = true;
    halt = true;
    return;
  }
  for (std::size_t i = 0; i < node.incident.size(); ++i) {
    if (node.edge_in_input[i]) {
      out[i] = {0, static_cast<std::int64_t>(node.uid)};
    }
  }
}

void GreedyUidMis::on_round(const NodeContext& node, std::size_t round,
                            const std::vector<Message>& inbox,
                            std::vector<Message>& out, bool& halt) {
  (void)round;
  // Last-known neighbor state per input edge; silence after an announcement
  // means "unchanged".
  static_assert(sizeof(std::int64_t) >= sizeof(std::uint64_t) / 2);
  bool neighbor_joined = false;
  bool is_local_min = true;
  for (std::size_t i = 0; i < node.incident.size(); ++i) {
    if (!node.edge_in_input[i]) continue;
    if (!inbox[i].empty()) {
      const std::int64_t s = inbox[i][0];
      const std::uint64_t uid = static_cast<std::uint64_t>(inbox[i][1]);
      if (s == 1) neighbor_joined = true;
      if (s == 0 && uid < node.uid) is_local_min = false;
    }
    // Empty message: the neighbor halted (decided kIn announced earlier and
    // handled then, or kOut which never blocks us).
  }
  if (neighbor_joined) {
    state_[node.index] = State::kOut;
    halt = true;
    return;
  }
  if (is_local_min) {
    state_[node.index] = State::kIn;
    in_mis_[node.index] = true;
    for (std::size_t i = 0; i < node.incident.size(); ++i) {
      if (node.edge_in_input[i]) out[i] = {1, static_cast<std::int64_t>(node.uid)};
    }
    halt = true;
    return;
  }
  for (std::size_t i = 0; i < node.incident.size(); ++i) {
    if (node.edge_in_input[i]) out[i] = {0, static_cast<std::int64_t>(node.uid)};
  }
}

// ------------------------------------------------------- proposal matching

void ProposalMatching::on_start(const NodeContext& node, std::vector<Message>& out,
                                bool& halt) {
  if (matched_pos_.empty()) {
    matched_pos_.assign(node.n, -1);
    next_try_.assign(node.n, 0);
  }
  const bool has_input = std::any_of(node.edge_in_input.begin(),
                                     node.edge_in_input.end(), [](bool b) { return b; });
  if (!has_input) {
    halt = true;
    return;
  }
  if (node.color == 0) {
    // White: propose on the first input edge.
    std::size_t& pos = next_try_[node.index];
    while (pos < node.incident.size() && !node.edge_in_input[pos]) ++pos;
    out[pos] = {kJoined};
  }
}

void ProposalMatching::on_round(const NodeContext& node, std::size_t round,
                                const std::vector<Message>& inbox,
                                std::vector<Message>& out, bool& halt) {
  if (node.color == 1) {
    // Black: act on odd rounds (proposals arrive then).
    if (round % 2 == 1) {
      for (std::size_t i = 0; i < inbox.size(); ++i) {
        if (node.edge_in_input[i] && !inbox[i].empty() && inbox[i][0] == kJoined) {
          matched_pos_[node.index] = static_cast<std::int64_t>(i);
          out[i] = {kAccept};
          halt = true;  // accept is still delivered next round
          return;
        }
      }
    }
    if (round > 2 * node.max_input_degree + 2) halt = true;  // stays unmatched
    return;
  }
  // White: act on even rounds (responses arrive then).
  if (round % 2 != 0) return;
  std::size_t& pos = next_try_[node.index];
  if (!inbox[pos].empty() && inbox[pos][0] == kAccept) {
    matched_pos_[node.index] = static_cast<std::int64_t>(pos);
    halt = true;
    return;
  }
  // Implicit reject: move to the next input edge.
  ++pos;
  while (pos < node.incident.size() && !node.edge_in_input[pos]) ++pos;
  if (pos >= node.incident.size()) {
    halt = true;  // exhausted: stays unmatched (all neighbors matched)
    return;
  }
  out[pos] = {kJoined};
}

std::vector<bool> ProposalMatching::matched_edges(const Network& net) const {
  std::vector<bool> matched(net.support_graph().edge_count(), false);
  for (std::size_t v = 0; v < net.node_count(); ++v) {
    const std::int64_t pos = matched_pos_[v];
    if (pos >= 0) {
      matched[net.context(v).incident[static_cast<std::size_t>(pos)]] = true;
    }
  }
  return matched;
}

// ----------------------------------------------------- arbdefective colors

void ArbdefectiveColoring::decide(const NodeContext& node,
                                  std::vector<Message>& out) {
  // Pick the color with the fewest conflicts among decided input neighbors.
  std::vector<std::size_t> conflicts(c_, 0);
  for (std::size_t i = 0; i < node.incident.size(); ++i) {
    if (!node.edge_in_input[i]) continue;
    const std::int64_t nc = neighbor_color_[node.index][i];
    if (nc >= 0) ++conflicts[static_cast<std::size_t>(nc)];
  }
  const std::size_t best = static_cast<std::size_t>(
      std::min_element(conflicts.begin(), conflicts.end()) - conflicts.begin());
  colors_[node.index] = static_cast<std::uint32_t>(best);
  for (std::size_t i = 0; i < node.incident.size(); ++i) {
    if (!node.edge_in_input[i]) continue;
    if (neighbor_color_[node.index][i] == static_cast<std::int64_t>(best)) {
      outgoing_[node.index][i] = true;  // conflict edge points to the earlier node
    }
    out[i] = {static_cast<std::int64_t>(best)};
  }
}

void ArbdefectiveColoring::on_start(const NodeContext& node, std::vector<Message>& out,
                                    bool& halt) {
  assert(node.support != nullptr && "ArbdefectiveColoring needs the Supported model");
  if (classes_.empty()) {
    classes_ = canonical_greedy_coloring(*node.support, *node.all_uids);
    colors_.assign(node.n, 0);
    neighbor_color_.assign(node.n, {});
    outgoing_.assign(node.n, {});
  }
  neighbor_color_[node.index].assign(node.incident.size(), -1);
  outgoing_[node.index].assign(node.incident.size(), false);
  if (classes_[node.index] == 0) {
    decide(node, out);
    halt = true;
  }
}

void ArbdefectiveColoring::on_round(const NodeContext& node, std::size_t round,
                                    const std::vector<Message>& inbox,
                                    std::vector<Message>& out, bool& halt) {
  for (std::size_t i = 0; i < inbox.size(); ++i) {
    if (node.edge_in_input[i] && !inbox[i].empty()) {
      neighbor_color_[node.index][i] = inbox[i][0];
    }
  }
  if (classes_[node.index] == round) {
    decide(node, out);
    halt = true;
  }
}

std::vector<NodeId> ArbdefectiveColoring::edge_tails(const Network& net) const {
  const Graph& g = net.support_graph();
  std::vector<NodeId> tail(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) tail[e] = g.edge(e).u;
  for (std::size_t v = 0; v < net.node_count(); ++v) {
    const NodeContext& ctx = net.context(v);
    for (std::size_t i = 0; i < ctx.incident.size(); ++i) {
      if (outgoing_[v][i]) tail[ctx.incident[i]] = static_cast<NodeId>(v);
    }
  }
  return tail;
}

// ------------------------------------------------------------- ruling sets

void BetaRulingSet::on_start(const NodeContext& node, std::vector<Message>& out,
                             bool& halt) {
  assert(node.support != nullptr && "BetaRulingSet needs the Supported model");
  assert(beta_ >= 1);
  if (classes_.empty()) {
    classes_ = canonical_greedy_coloring(*node.support, *node.all_uids);
    num_classes_ = color_count(classes_);
    in_set_.assign(node.n, false);
    covered_.assign(node.n, false);
    max_ttl_sent_.assign(node.n, -1);
  }
  if (classes_[node.index] == 0) {
    in_set_[node.index] = true;
    for (std::size_t i = 0; i < node.incident.size(); ++i) {
      if (node.edge_in_input[i]) out[i] = {static_cast<std::int64_t>(beta_)};
    }
    max_ttl_sent_[node.index] = static_cast<std::int64_t>(beta_);
  }
  if (num_classes_ <= 1) halt = true;
}

void BetaRulingSet::on_round(const NodeContext& node, std::size_t round,
                             const std::vector<Message>& inbox,
                             std::vector<Message>& out, bool& halt) {
  // Collect coverage tokens; forward with decremented TTL.
  std::int64_t best_ttl = -1;
  for (std::size_t i = 0; i < inbox.size(); ++i) {
    if (node.edge_in_input[i] && !inbox[i].empty()) {
      covered_[node.index] = true;
      best_ttl = std::max(best_ttl, inbox[i][0] - 1);
    }
  }
  std::int64_t send_ttl = -1;
  if (best_ttl >= 1 && best_ttl > max_ttl_sent_[node.index]) send_ttl = best_ttl;

  if (classes_[node.index] > 0 &&
      round == static_cast<std::size_t>(classes_[node.index]) * beta_ &&
      !covered_[node.index]) {
    in_set_[node.index] = true;
    send_ttl = static_cast<std::int64_t>(beta_);
  }
  if (send_ttl >= 1) {
    for (std::size_t i = 0; i < node.incident.size(); ++i) {
      if (node.edge_in_input[i]) out[i] = {send_ttl};
    }
    max_ttl_sent_[node.index] = std::max(max_ttl_sent_[node.index], send_ttl);
  }
  if (round >= num_classes_ * beta_) halt = true;
}

}  // namespace slocal

namespace slocal {

// ------------------------------------------------------- ring 3-coloring

std::size_t RingColoring::successor_port(const NodeContext& node) const {
  // make_cycle adds edge i = {i, i+1 mod n}; the edge whose id equals the
  // node's index leads to the successor, giving a globally consistent
  // orientation every node derives locally.
  for (std::size_t i = 0; i < node.incident.size(); ++i) {
    if (node.incident[i] == static_cast<EdgeId>(node.index)) return i;
  }
  return 0;  // unreachable on make_cycle rings
}

void RingColoring::on_start(const NodeContext& node, std::vector<Message>& out,
                            bool& halt) {
  (void)halt;
  if (color_.empty()) {
    color_.assign(node.n, 0);
    colors_.assign(node.n, 0);
  }
  color_[node.index] = static_cast<std::int64_t>(node.uid);
  for (auto& m : out) m = {color_[node.index]};
}

void RingColoring::on_round(const NodeContext& node, std::size_t round,
                            const std::vector<Message>& inbox,
                            std::vector<Message>& out, bool& halt) {
  const std::size_t succ = successor_port(node);
  std::int64_t& my = color_[node.index];
  if (round <= kCvRounds) {
    // Cole–Vishkin step against the successor's color.
    const std::int64_t other = inbox[succ].empty() ? 0 : inbox[succ][0];
    std::size_t k = 0;
    while (((my >> k) & 1) == ((other >> k) & 1)) ++k;
    my = static_cast<std::int64_t>(2 * k + ((my >> k) & 1));
    for (auto& m : out) m = {my};
    return;
  }
  // Shift-down rounds: colors 5, 4, 3 recolor greedily from {0,1,2}.
  const std::int64_t retiring = 5 - static_cast<std::int64_t>(round - kCvRounds - 1);
  if (my == retiring) {
    bool taken[3] = {false, false, false};
    for (const auto& m : inbox) {
      if (!m.empty() && m[0] >= 0 && m[0] < 3) taken[m[0]] = true;
    }
    std::int64_t c = 0;
    while (taken[c]) ++c;
    my = c;
  }
  for (auto& m : out) m = {my};
  if (retiring == 3) {
    colors_[node.index] = static_cast<std::uint32_t>(my);
    halt = true;
  }
}

}  // namespace slocal

namespace slocal {

// ----------------------------------------------------------- Luby MIS

namespace {

/// splitmix64 finalizer — the per-node stateless draw. Hashing
/// (seed, uid, round) instead of advancing a shared generator keeps the
/// run independent of node evaluation order, which is what lets the
/// batched simulator run Luby rounds across shards.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void LubyMis::draw_and_send(const NodeContext& node, std::size_t round,
                            std::vector<Message>& out) {
  const std::uint64_t draw =
      mix64(mix64(seed_ + node.uid) + static_cast<std::uint64_t>(round));
  my_draw_[node.index] = static_cast<std::int64_t>(draw >> 1);
  for (std::size_t i = 0; i < node.incident.size(); ++i) {
    if (node.edge_in_input[i]) {
      out[i] = {0, my_draw_[node.index], static_cast<std::int64_t>(node.uid)};
    }
  }
}

void LubyMis::on_start(const NodeContext& node, std::vector<Message>& out,
                       bool& halt) {
  if (my_draw_.empty()) {
    my_draw_.assign(node.n, 0);
    in_mis_.assign(node.n, false);
  }
  const bool isolated = std::none_of(node.edge_in_input.begin(),
                                     node.edge_in_input.end(), [](bool b) { return b; });
  if (isolated) {
    in_mis_[node.index] = true;
    halt = true;
    return;
  }
  draw_and_send(node, /*round=*/0, out);
}

void LubyMis::on_round(const NodeContext& node, std::size_t round,
                       const std::vector<Message>& inbox, std::vector<Message>& out,
                       bool& halt) {
  bool neighbor_joined = false;
  bool winner = true;
  for (std::size_t i = 0; i < node.incident.size(); ++i) {
    if (!node.edge_in_input[i] || inbox[i].empty()) continue;
    if (inbox[i][0] == 1) {
      neighbor_joined = true;
      continue;
    }
    const std::int64_t their_draw = inbox[i][1];
    const std::uint64_t their_uid = static_cast<std::uint64_t>(inbox[i][2]);
    if (their_draw > my_draw_[node.index] ||
        (their_draw == my_draw_[node.index] && their_uid > node.uid)) {
      winner = false;
    }
  }
  if (neighbor_joined) {
    halt = true;  // retire uncolored: dominated
    return;
  }
  if (winner) {
    in_mis_[node.index] = true;
    for (std::size_t i = 0; i < node.incident.size(); ++i) {
      if (node.edge_in_input[i]) out[i] = {1};
    }
    halt = true;
    return;
  }
  draw_and_send(node, round, out);
}

}  // namespace slocal
