#include "src/sim/supported.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace slocal {

std::vector<std::uint32_t> canonical_greedy_coloring(
    const Graph& support, const std::vector<std::uint64_t>& uids) {
  assert(uids.size() == support.node_count());
  std::vector<std::size_t> order(support.node_count());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return uids[a] < uids[b]; });

  std::vector<std::uint32_t> color(support.node_count(),
                                   std::numeric_limits<std::uint32_t>::max());
  std::vector<char> taken;
  for (const std::size_t v : order) {
    taken.assign(support.degree(static_cast<NodeId>(v)) + 1, 0);
    for (const EdgeId e : support.incident_edges(static_cast<NodeId>(v))) {
      const std::uint32_t c = color[support.edge(e).other(static_cast<NodeId>(v))];
      if (c < taken.size()) taken[c] = 1;
    }
    std::uint32_t c = 0;
    while (taken[c]) ++c;
    color[v] = c;
  }
  return color;
}

std::size_t color_count(const std::vector<std::uint32_t>& colors) {
  std::uint32_t max_color = 0;
  for (const std::uint32_t c : colors) max_color = std::max(max_color, c);
  return colors.empty() ? 0 : static_cast<std::size_t>(max_color) + 1;
}

std::vector<std::uint64_t> canonical_rank_ids(const std::vector<std::uint64_t>& uids) {
  std::vector<std::size_t> order(uids.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return uids[a] < uids[b]; });
  std::vector<std::uint64_t> ranks(uids.size());
  for (std::size_t r = 0; r < order.size(); ++r) ranks[order[r]] = r + 1;
  return ranks;
}

}  // namespace slocal
