// Compact CSR (compressed sparse row) representation of a support graph —
// the substrate of the million-node Supported LOCAL simulator.
//
// Where `Graph` keeps one heap-allocated adjacency vector per node (ideal
// for incremental construction and small instances), CsrGraph packs the
// whole topology into four flat arrays:
//
//   offsets    n+1   half-edge range of node v is [offsets[v], offsets[v+1])
//   neighbors  2m    neighbor node id per half-edge
//   edge_ids   2m    undirected edge id per half-edge
//   mirror     2m    position of the reverse half-edge (v -> u for u -> v)
//
// Half-edges of a node appear in ascending edge-id order — exactly the
// order `Graph::incident_edges` reports — so a CsrGraph built from a Graph
// presents every node with identical ports, and a simulator running on
// either representation routes messages identically. `mirror` makes a
// synchronous message exchange a single indexed gather with no per-round
// routing table (the BGPExtrapolator-style propagation layout).
//
// Construction is either a copy from an existing `Graph` (infallible) or a
// validating build from a flat edge list (`from_edges` / CsrStreamBuilder),
// which is how the streaming generators emit 10^6..10^7-node instances
// without ever materializing per-node adjacency vectors. Validation is
// structured: out-of-range endpoints, self-loops, and duplicate edges are
// reported with the offending edge index, and duplicates can optionally be
// normalized away (first occurrence kept) instead of rejected.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/graph/graph.hpp"

namespace slocal {

/// Why a CSR build rejected its edge list.
enum class CsrBuildErrorKind : std::uint8_t {
  kNone = 0,
  kEndpointOutOfRange,  // u or v >= node_count
  kSelfLoop,            // u == v
  kDuplicateEdge,       // {u, v} already present (and normalization is off)
  kTooManyEdges,        // edge/half-edge count overflows the 32-bit id space
};

const char* to_string(CsrBuildErrorKind kind);

/// Structured rejection: which edge, which endpoints, and why. `message` is
/// the preformatted human-readable line the CLI and tests surface.
struct CsrBuildError {
  CsrBuildErrorKind kind = CsrBuildErrorKind::kNone;
  std::size_t edge_index = 0;  // index into the offending edge list
  NodeId u = 0;
  NodeId v = 0;
  std::string message;
};

struct CsrBuildOptions {
  /// Keep the first occurrence of a duplicate undirected edge and drop the
  /// rest (normalization) instead of rejecting the list.
  bool drop_duplicate_edges = false;
};

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Infallible copy from a (simple by construction) Graph. Ports match
  /// Graph::incident_edges order exactly.
  static CsrGraph from_graph(const Graph& graph);

  /// Validating build from a flat edge list. Edge ids are assigned in list
  /// order (after normalization, if enabled). Returns nullopt and fills
  /// `*error` on rejection.
  static std::optional<CsrGraph> from_edges(std::size_t node_count,
                                            std::span<const Edge> edges,
                                            CsrBuildError* error = nullptr,
                                            const CsrBuildOptions& options = {});

  std::size_t node_count() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t edge_count() const { return edges_.size(); }
  std::size_t half_edge_count() const { return neighbors_.size(); }

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  std::span<const Edge> edges() const { return edges_; }

  std::size_t degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }
  std::size_t max_degree() const { return max_degree_; }
  std::size_t min_degree() const { return min_degree_; }
  bool is_regular() const { return node_count() == 0 || max_degree_ == min_degree_; }

  /// Half-edge range of node v (positions into neighbors()/edge_ids()).
  std::uint32_t offset(NodeId v) const { return offsets_[v]; }
  std::span<const NodeId> neighbors(NodeId v) const {
    return {neighbors_.data() + offsets_[v], degree(v)};
  }
  std::span<const EdgeId> edge_ids(NodeId v) const {
    return {edge_ids_.data() + offsets_[v], degree(v)};
  }

  // Flat views (the simulator's hot loop indexes these directly).
  std::span<const std::uint32_t> offsets() const { return offsets_; }
  std::span<const NodeId> neighbors() const { return neighbors_; }
  std::span<const EdgeId> edge_ids() const { return edge_ids_; }
  std::span<const std::uint32_t> mirror() const { return mirror_; }

  /// Expands back into a Graph (test/debug helper; allocates per node).
  Graph to_graph() const;

 private:
  void build_csr(std::size_t node_count);

  std::vector<Edge> edges_;
  std::vector<std::uint32_t> offsets_;
  std::vector<NodeId> neighbors_;
  std::vector<EdgeId> edge_ids_;
  std::vector<std::uint32_t> mirror_;
  std::size_t max_degree_ = 0;
  std::size_t min_degree_ = 0;
};

/// Accumulates a streamed edge sequence (from the streaming generators)
/// and finalizes it into a validated CsrGraph. Only the flat edge list is
/// buffered — never per-node adjacency — so peak memory is 8 bytes/edge
/// over the CSR arrays themselves.
class CsrStreamBuilder {
 public:
  explicit CsrStreamBuilder(std::size_t node_count) : node_count_(node_count) {}

  void add_edge(NodeId u, NodeId v) { edges_.push_back({u, v}); }
  std::size_t edge_count() const { return edges_.size(); }

  /// Validates and builds; the builder is left empty either way.
  std::optional<CsrGraph> finish(CsrBuildError* error = nullptr,
                                 const CsrBuildOptions& options = {});

 private:
  std::size_t node_count_;
  std::vector<Edge> edges_;
};

}  // namespace slocal
