#include "src/sim/fast/csr_graph.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace slocal {

namespace {

constexpr std::size_t kMaxEdges = std::numeric_limits<EdgeId>::max() / 2;

/// Order-independent 64-bit key of an undirected edge, for duplicate
/// detection via one sort over packed keys.
std::uint64_t edge_key(const Edge& e) {
  const std::uint64_t lo = std::min(e.u, e.v);
  const std::uint64_t hi = std::max(e.u, e.v);
  return (lo << 32) | hi;
}

CsrBuildError make_error(CsrBuildErrorKind kind, std::size_t index, NodeId u,
                         NodeId v, std::string detail) {
  CsrBuildError error;
  error.kind = kind;
  error.edge_index = index;
  error.u = u;
  error.v = v;
  error.message = "csr: edge " + std::to_string(index) + " (" +
                  std::to_string(u) + ", " + std::to_string(v) +
                  "): " + std::move(detail);
  return error;
}

}  // namespace

const char* to_string(CsrBuildErrorKind kind) {
  switch (kind) {
    case CsrBuildErrorKind::kNone: return "none";
    case CsrBuildErrorKind::kEndpointOutOfRange: return "endpoint out of range";
    case CsrBuildErrorKind::kSelfLoop: return "self-loop";
    case CsrBuildErrorKind::kDuplicateEdge: return "duplicate edge";
    case CsrBuildErrorKind::kTooManyEdges: return "too many edges";
  }
  return "?";
}

void CsrGraph::build_csr(std::size_t node_count) {
  const std::size_t m = edges_.size();
  offsets_.assign(node_count + 1, 0);
  // Counting sort by endpoint: pass 1 degrees, pass 2 placement. Iterating
  // edges in id order appends each node's half-edges in ascending edge-id
  // order — the same port order Graph::incident_edges presents.
  for (const Edge& e : edges_) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (std::size_t v = 0; v < node_count; ++v) offsets_[v + 1] += offsets_[v];

  neighbors_.resize(2 * m);
  edge_ids_.resize(2 * m);
  mirror_.resize(2 * m);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& edge = edges_[e];
    const std::uint32_t pu = cursor[edge.u]++;
    const std::uint32_t pv = cursor[edge.v]++;
    neighbors_[pu] = edge.v;
    edge_ids_[pu] = e;
    neighbors_[pv] = edge.u;
    edge_ids_[pv] = e;
    mirror_[pu] = pv;
    mirror_[pv] = pu;
  }

  max_degree_ = 0;
  min_degree_ = node_count == 0 ? 0 : std::numeric_limits<std::size_t>::max();
  for (std::size_t v = 0; v < node_count; ++v) {
    const std::size_t d = offsets_[v + 1] - offsets_[v];
    max_degree_ = std::max(max_degree_, d);
    min_degree_ = std::min(min_degree_, d);
  }
}

CsrGraph CsrGraph::from_graph(const Graph& graph) {
  CsrGraph csr;
  csr.edges_.assign(graph.edges().begin(), graph.edges().end());
  csr.build_csr(graph.node_count());
  return csr;
}

std::optional<CsrGraph> CsrGraph::from_edges(std::size_t node_count,
                                             std::span<const Edge> edges,
                                             CsrBuildError* error,
                                             const CsrBuildOptions& options) {
  const auto reject = [&](CsrBuildError e) -> std::optional<CsrGraph> {
    if (error != nullptr) *error = std::move(e);
    return std::nullopt;
  };
  if (edges.size() > kMaxEdges) {
    return reject(make_error(CsrBuildErrorKind::kTooManyEdges, edges.size(), 0, 0,
                             "edge count overflows the 32-bit id space"));
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    if (e.u >= node_count || e.v >= node_count) {
      return reject(make_error(CsrBuildErrorKind::kEndpointOutOfRange, i, e.u, e.v,
                               "endpoint out of range (n = " +
                                   std::to_string(node_count) + ")"));
    }
    if (e.u == e.v) {
      return reject(make_error(CsrBuildErrorKind::kSelfLoop, i, e.u, e.v,
                               "self-loop"));
    }
  }

  // Duplicate detection by one sort over (key, original index): the first
  // occurrence of a key survives normalization, every later one is either a
  // structured rejection or a drop.
  std::vector<std::uint8_t> dropped(edges.size(), 0);
  bool any_dropped = false;
  {
    std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed(edges.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
      keyed[i] = {edge_key(edges[i]), static_cast<std::uint32_t>(i)};
    }
    std::sort(keyed.begin(), keyed.end());
    for (std::size_t i = 1; i < keyed.size(); ++i) {
      if (keyed[i].first != keyed[i - 1].first) continue;
      const std::uint32_t dup = keyed[i].second;
      if (!options.drop_duplicate_edges) {
        return reject(make_error(CsrBuildErrorKind::kDuplicateEdge, dup,
                                 edges[dup].u, edges[dup].v, "duplicate edge"));
      }
      dropped[dup] = 1;
      any_dropped = true;
    }
  }

  CsrGraph csr;
  csr.edges_.reserve(edges.size());
  if (any_dropped) {
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (!dropped[i]) csr.edges_.push_back(edges[i]);
    }
  } else {
    csr.edges_.assign(edges.begin(), edges.end());
  }
  csr.build_csr(node_count);
  return csr;
}

Graph CsrGraph::to_graph() const {
  Graph g(node_count());
  for (const Edge& e : edges_) {
    const auto id = g.add_edge(e.u, e.v);
    assert(id.has_value());
    (void)id;
  }
  return g;
}

std::optional<CsrGraph> CsrStreamBuilder::finish(CsrBuildError* error,
                                                 const CsrBuildOptions& options) {
  auto csr = CsrGraph::from_edges(node_count_, edges_, error, options);
  edges_.clear();
  edges_.shrink_to_fit();
  return csr;
}

}  // namespace slocal
