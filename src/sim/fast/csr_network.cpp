#include "src/sim/fast/csr_network.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <functional>
#include <numeric>

#include "src/util/thread_pool.hpp"

namespace slocal {

namespace {

/// Shard width in nodes. A function of nothing but this constant — shard
/// boundaries must never depend on the thread count, or bit-identical
/// output across thread counts would be lost.
constexpr std::size_t kShardNodes = 4096;

/// Per-shard working set: a reusable NodeContext + message vectors (the
/// adapter that lets reference `Algorithm`s run on flat CSR buffers), plus
/// this round's counters. Tasks touch only their own shard's entry;
/// counters are folded in shard order after the barrier.
struct Shard {
  NodeContext ctx;
  std::vector<Message> inbox;
  std::vector<Message> out;
  std::size_t halts = 0;
  std::uint64_t messages = 0;
  bool overflow = false;
  std::size_t overflow_node = 0;
  std::size_t overflow_words = 0;
};

}  // namespace

CsrNetwork::CsrNetwork(CsrGraph graph, CsrNetworkConfig config)
    : graph_(std::move(graph)), config_(std::move(config)) {
  const std::size_t n = graph_.node_count();
  assert(config_.input_edges.empty() ||
         config_.input_edges.size() == graph_.edge_count());
  assert(config_.uids.empty() || config_.uids.size() == n);
  assert(config_.colors.empty() || config_.colors.size() == n);
  uids_ = config_.uids;
  if (uids_.empty()) {
    uids_.resize(n);
    std::iota(uids_.begin(), uids_.end(), std::uint64_t{1});
  }
  if (config_.input_edges.empty()) {
    max_input_degree_ = graph_.max_degree();
  } else {
    std::vector<std::size_t> input_degree(n, 0);
    for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
      if (config_.input_edges[e]) {
        ++input_degree[graph_.edge(e).u];
        ++input_degree[graph_.edge(e).v];
      }
    }
    max_input_degree_ =
        n == 0 ? 0 : *std::max_element(input_degree.begin(), input_degree.end());
  }
}

CsrRunResult CsrNetwork::run(Algorithm& algorithm, const CsrRunOptions& options) {
  CsrRunResult result;
  const std::size_t n = graph_.node_count();
  const std::size_t W = options.max_message_words;
  if (W == 0 || W > 255) {
    result.error = "csr-run: max_message_words must be in [1, 255], got " +
                   std::to_string(W);
    return result;
  }
  const std::size_t half = graph_.half_edge_count();
  SearchBudget* budget = options.budget;

  // Double-buffered flat message slots: round r reads buffer (r-1)&1 and
  // writes buffer r&1. lens[b][pos] is the word count of the message in
  // slot pos (0 = no message); words[b][pos*W..] holds its payload.
  std::array<std::vector<std::int64_t>, 2> words;
  std::array<std::vector<std::uint8_t>, 2> lens;
  for (int b = 0; b < 2; ++b) {
    words[b].assign(half * W, 0);
    lens[b].assign(half, 0);
  }
  std::vector<std::uint8_t> halted(n, 0);
  // Rounds of silence left: a fresh halter clears its slots in each parity
  // buffer once (its final messages were already delivered), then is
  // skipped outright.
  std::vector<std::uint8_t> silence(n, 0);
  halt_rounds_.assign(n, kNotHalted);

  const std::uint32_t* offsets = graph_.offsets().data();
  const std::uint32_t* mirror = graph_.mirror().data();
  const bool all_input = config_.input_edges.empty();

  const auto fill_context = [&](NodeContext& ctx, std::size_t v) {
    ctx.index = v;
    ctx.uid = uids_[v];
    ctx.n = n;
    ctx.max_degree = graph_.max_degree();
    ctx.max_input_degree = max_input_degree_;
    ctx.color = config_.colors.empty() ? 0 : config_.colors[v];
    const auto ids = graph_.edge_ids(static_cast<NodeId>(v));
    const auto nbrs = graph_.neighbors(static_cast<NodeId>(v));
    ctx.incident.assign(ids.begin(), ids.end());
    ctx.neighbors.assign(nbrs.begin(), nbrs.end());
    ctx.edge_in_input.resize(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ctx.edge_in_input[i] = all_input || config_.input_edges[ids[i]] != 0;
    }
    ctx.support = config_.support;
    ctx.all_uids = config_.support != nullptr ? &uids_ : nullptr;
  };

  // Writes node v's outbox into the flat slots of buffer `w`. Returns false
  // on a message wider than the slot.
  const auto store_outbox = [&](std::size_t v, const std::vector<Message>& out,
                                int w, std::uint64_t& messages,
                                std::size_t& bad_words) {
    const std::uint32_t off = offsets[v];
    for (std::size_t i = 0; i < out.size(); ++i) {
      const std::size_t len = out[i].size();
      if (len > W) {
        bad_words = len;
        return false;
      }
      lens[w][off + i] = static_cast<std::uint8_t>(len);
      if (len > 0) {
        std::memcpy(words[w].data() + (off + i) * static_cast<std::size_t>(W),
                    out[i].data(), len * sizeof(std::int64_t));
        ++messages;
      }
    }
    return true;
  };

  // Round 0: on_start runs serially — the documented window in which
  // algorithms may lazily build shared preprocessing state.
  std::size_t live = n;
  if (budget != nullptr && !budget->charge(n)) {
    result.exhausted = true;
    return result;
  }
  {
    Shard start;
    for (std::size_t v = 0; v < n; ++v) {
      fill_context(start.ctx, v);
      const std::size_t deg = start.ctx.incident.size();
      start.out.resize(deg);
      for (auto& m : start.out) m.clear();
      bool halt = false;
      algorithm.on_start(start.ctx, start.out, halt);
      std::size_t bad_words = 0;
      if (!store_outbox(v, start.out, 0, result.messages_sent, bad_words)) {
        result.error = "csr-run: node " + std::to_string(v) + " emitted a " +
                       std::to_string(bad_words) + "-word message (slot is " +
                       std::to_string(W) + " words)";
        return result;
      }
      if (halt) {
        halted[v] = 1;
        silence[v] = 2;
        halt_rounds_[v] = 0;
        --live;
      }
    }
  }
  if (live == 0) {
    result.completed = true;
    return result;  // 0 rounds
  }

  const std::size_t shard_count = (n + kShardNodes - 1) / kShardNodes;
  std::vector<Shard> shards(shard_count);
  ThreadPool pool(ThreadPool::resolve_threads(options.threads) - 1);

  const auto run_shard = [&](std::size_t s, std::size_t round, int r, int w) {
    Shard& sh = shards[s];
    sh.halts = 0;
    sh.messages = 0;
    if (budget != nullptr && budget->halted()) return;  // abandon the sweep
    const std::size_t lo = s * kShardNodes;
    const std::size_t hi = std::min(n, lo + kShardNodes);
    for (std::size_t v = lo; v < hi; ++v) {
      const std::uint32_t off = offsets[v];
      const std::size_t deg = offsets[v + 1] - off;
      if (halted[v]) {
        if (silence[v] > 0) {
          std::fill_n(lens[w].begin() + off, deg, std::uint8_t{0});
          --silence[v];
        }
        continue;
      }
      fill_context(sh.ctx, v);
      sh.inbox.resize(deg);
      for (std::size_t i = 0; i < deg; ++i) {
        const std::uint32_t mpos = mirror[off + i];
        const std::int64_t* payload =
            words[r].data() + mpos * static_cast<std::size_t>(W);
        sh.inbox[i].assign(payload, payload + lens[r][mpos]);
      }
      sh.out.resize(deg);
      for (auto& m : sh.out) m.clear();
      bool halt = false;
      algorithm.on_round(sh.ctx, round, sh.inbox, sh.out, halt);
      std::size_t bad_words = 0;
      if (!store_outbox(v, sh.out, w, sh.messages, bad_words)) {
        sh.overflow = true;
        sh.overflow_node = v;
        sh.overflow_words = bad_words;
        return;
      }
      if (halt) {
        halted[v] = 1;
        silence[v] = 2;
        halt_rounds_[v] = round;
        ++sh.halts;
      }
    }
  };

  for (std::size_t round = 1; round <= options.max_rounds; ++round) {
    if (budget != nullptr && !budget->charge(live)) {
      result.exhausted = true;
      return result;
    }
    const int r = static_cast<int>((round - 1) & 1);
    const int w = static_cast<int>(round & 1);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      tasks.push_back([&run_shard, s, round, r, w] { run_shard(s, round, r, w); });
    }
    pool.run_batch(std::move(tasks));

    // Fold per-shard results in shard order (determinism by construction).
    bool any_halt = false;
    for (std::size_t s = 0; s < shard_count; ++s) {
      const Shard& sh = shards[s];
      if (sh.overflow && result.error.empty()) {
        result.error = "csr-run: node " + std::to_string(sh.overflow_node) +
                       " emitted a " + std::to_string(sh.overflow_words) +
                       "-word message (slot is " + std::to_string(W) + " words)";
      }
      live -= sh.halts;
      any_halt = any_halt || sh.halts > 0;
      result.messages_sent += sh.messages;
    }
    if (!result.error.empty()) return result;
    if (any_halt) result.rounds = round;
    if (live == 0) {
      // Every node halted: the sweep demonstrably ran to completion, so the
      // verdict stands even if the budget tripped at the very end.
      result.completed = true;
      return result;
    }
    if (budget != nullptr && budget->halted()) {
      result.exhausted = true;
      return result;
    }
  }
  result.rounds = options.max_rounds;
  result.completed = false;
  return result;
}

}  // namespace slocal
