// Batched synchronous simulator over a CsrGraph — the million-node fast
// path of the Supported LOCAL simulator.
//
// Runs the SAME `Algorithm` objects as the reference `Network` (one
// implementation drives both paths) but replaces per-node message vectors
// with two flat per-half-edge buffers, double-buffered by round parity:
// round r reads buffer (r-1)&1 and writes buffer r&1, so delivering a
// message is one indexed gather through `CsrGraph::mirror` with no locks
// and no routing table (the BGPExtrapolator propagation layout).
//
// A round is one parallel sweep: nodes are partitioned into contiguous
// shards whose boundaries depend only on n — never on the thread count —
// and each shard task writes only its own nodes' state, message slots, and
// per-shard counters. `run_batch` returning is the only barrier. Counters
// are folded in shard order afterwards, so results (outputs, halt rounds,
// round count, message count) are bit-identical across thread counts.
//
// Parity with the reference simulator is exact, including the halting
// protocol: a node that halts in round r still has its round-r messages
// delivered in round r+1, then goes silent. Here that is a 2-round
// countdown clearing the node's slots in each parity buffer once, after
// which the node is skipped entirely.
//
// Thread-safety contract for algorithms (see src/sim/algorithms.hpp):
// `on_start` always runs serially (lazy preprocessing is safe there);
// `on_round` may run concurrently for different nodes and must only touch
// per-node state indexed by `node.index` through containers that do not
// bit-pack (no std::vector<bool> elements) and draw randomness as pure
// functions of (seed, uid, round).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/fast/csr_graph.hpp"
#include "src/sim/network.hpp"
#include "src/util/budget.hpp"

namespace slocal {

struct CsrNetworkConfig {
  /// Per-edge input flags, indexed by CsrGraph edge id. Empty = every
  /// support edge is in the input graph (plain LOCAL).
  std::vector<std::uint8_t> input_edges;
  /// Per-node identifiers; empty = 1..n (matching Network's default).
  std::vector<std::uint64_t> uids;
  /// Harness 2-coloring exposed through NodeContext::color; empty = all 0.
  std::vector<std::int32_t> colors;
  /// Supported-mode extras: when set, every NodeContext carries this graph
  /// and the uid table. Must describe the same topology as the CsrGraph
  /// (e.g. the Graph the CSR was built from). nullptr = plain LOCAL.
  const Graph* support = nullptr;
};

struct CsrRunOptions {
  std::size_t max_rounds = 10'000;
  /// Worker threads for the round sweeps; 0 = all hardware threads.
  /// Output is bit-identical for every value.
  std::size_t threads = 1;
  /// Flat slot width: the longest message (in int64 words) any algorithm
  /// may emit. Exceeding it is a structured run error, not UB. Max 255.
  std::size_t max_message_words = 4;
  /// Optional budget: charged one node per node computation, polled every
  /// shard. Exhaustion aborts the run with `exhausted` set — never a
  /// completed=true verdict (no flips).
  SearchBudget* budget = nullptr;
};

struct CsrRunResult {
  std::size_t rounds = 0;           // round of the last halt
  bool completed = false;           // every node halted within max_rounds
  bool exhausted = false;           // budget tripped mid-run (no verdict)
  std::uint64_t messages_sent = 0;  // non-empty messages across the run
  std::string error;                // non-empty on hard error (overflow)
};

class CsrNetwork {
 public:
  /// Value for halt_rounds() entries of nodes that never halted.
  static constexpr std::size_t kNotHalted = static_cast<std::size_t>(-1);

  explicit CsrNetwork(CsrGraph graph, CsrNetworkConfig config = {});

  CsrRunResult run(Algorithm& algorithm, const CsrRunOptions& options = {});

  /// Per-node halt round of the last run (0 = halted in on_start,
  /// kNotHalted = still live when the run stopped).
  const std::vector<std::size_t>& halt_rounds() const { return halt_rounds_; }

  std::size_t node_count() const { return graph_.node_count(); }
  const CsrGraph& graph() const { return graph_; }
  const std::vector<std::uint64_t>& uids() const { return uids_; }

 private:
  CsrGraph graph_;
  CsrNetworkConfig config_;
  std::vector<std::uint64_t> uids_;
  std::size_t max_input_degree_ = 0;
  std::vector<std::size_t> halt_rounds_;
};

}  // namespace slocal
