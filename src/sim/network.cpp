#include "src/sim/network.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <numeric>

namespace slocal {

Network::Network(const Graph& graph, std::vector<std::uint64_t> uids)
    : graph_(graph),
      input_edges_(graph.edge_count(), true),
      uids_(std::move(uids)) {
  build_contexts(/*supported=*/false);
}

Network::Network(const Graph& support, const std::vector<bool>& input_edges,
                 std::vector<std::uint64_t> uids)
    : graph_(support), input_edges_(input_edges), uids_(std::move(uids)) {
  assert(input_edges_.size() == support.edge_count());
  build_contexts(/*supported=*/true);
}

void Network::build_contexts(bool supported) {
  supported_ = supported;
  const std::size_t n = graph_.node_count();
  if (uids_.empty()) {
    uids_.resize(n);
    std::iota(uids_.begin(), uids_.end(), std::uint64_t{1});
  }
  assert(uids_.size() == n);
  std::vector<std::size_t> input_degree(n, 0);
  for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
    if (input_edges_[e]) {
      ++input_degree[graph_.edge(e).u];
      ++input_degree[graph_.edge(e).v];
    }
  }
  const std::size_t max_input_degree =
      n == 0 ? 0 : *std::max_element(input_degree.begin(), input_degree.end());
  contexts_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    NodeContext& ctx = contexts_[v];
    ctx.index = v;
    ctx.uid = uids_[v];
    ctx.n = n;
    ctx.max_degree = graph_.max_degree();
    ctx.max_input_degree = max_input_degree;
    const auto inc = graph_.incident_edges(static_cast<NodeId>(v));
    ctx.incident.assign(inc.begin(), inc.end());
    ctx.neighbors.clear();
    ctx.edge_in_input.clear();
    for (const EdgeId e : ctx.incident) {
      ctx.neighbors.push_back(graph_.edge(e).other(static_cast<NodeId>(v)));
      ctx.edge_in_input.push_back(input_edges_[e]);
    }
    if (supported) {
      ctx.support = &graph_;
      ctx.all_uids = &uids_;
    }
  }
}

void Network::set_colors(std::vector<std::int32_t> colors) {
  assert(colors.size() == contexts_.size());
  for (std::size_t v = 0; v < contexts_.size(); ++v) contexts_[v].color = colors[v];
}

Graph Network::input_graph() const {
  Graph g(graph_.node_count());
  for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
    if (input_edges_[e]) g.add_edge(graph_.edge(e).u, graph_.edge(e).v);
  }
  return g;
}

RunResult Network::run(Algorithm& algorithm, std::size_t max_rounds) {
  const std::size_t n = contexts_.size();
  std::vector<std::vector<Message>> outboxes(n);
  std::vector<std::vector<Message>> inboxes(n);
  std::vector<bool> halted(n, false);
  halt_rounds_.assign(n, kNotHalted);
  std::size_t live = n;

  for (std::size_t v = 0; v < n; ++v) {
    outboxes[v].assign(contexts_[v].incident.size(), Message{});
    inboxes[v].assign(contexts_[v].incident.size(), Message{});
    bool halt = false;
    algorithm.on_start(contexts_[v], outboxes[v], halt);
    if (halt) {
      halted[v] = true;
      halt_rounds_[v] = 0;
      --live;
    }
  }
  RunResult result;
  for (const auto& box : outboxes) {
    for (const auto& m : box) result.messages_sent += m.empty() ? 0 : 1;
  }
  if (live == 0) {
    result.completed = true;
    return result;  // 0 rounds
  }

  // Position of each edge within each endpoint's incident list, for message
  // routing.
  std::vector<std::array<std::size_t, 2>> edge_pos(graph_.edge_count());
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < contexts_[v].incident.size(); ++i) {
      const EdgeId e = contexts_[v].incident[i];
      edge_pos[e][graph_.edge(e).u == v ? 0 : 1] = i;
    }
  }

  for (std::size_t round = 1; round <= max_rounds; ++round) {
    // Deliver.
    for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
      const Edge& edge = graph_.edge(e);
      inboxes[edge.u][edge_pos[e][0]] = outboxes[edge.v][edge_pos[e][1]];
      inboxes[edge.v][edge_pos[e][1]] = outboxes[edge.u][edge_pos[e][0]];
    }
    // Compute. Delivery already copied this round's messages out of the
    // outboxes, so the algorithm writes the next round's messages straight
    // into the (emptied, capacity-retaining) outbox — no per-node
    // allocation in the round loop.
    for (std::size_t v = 0; v < n; ++v) {
      if (halted[v]) {
        // Halted nodes stay silent.
        for (auto& m : outboxes[v]) m.clear();
        continue;
      }
      for (auto& m : outboxes[v]) m.clear();
      bool halt = false;
      algorithm.on_round(contexts_[v], round, inboxes[v], outboxes[v], halt);
      for (const auto& m : outboxes[v]) result.messages_sent += m.empty() ? 0 : 1;
      if (halt) {
        halted[v] = true;
        halt_rounds_[v] = round;
        --live;
        result.rounds = round;
      }
    }
    if (live == 0) {
      result.completed = true;
      return result;
    }
  }
  result.rounds = max_rounds;
  result.completed = false;
  return result;
}

}  // namespace slocal
