// Distributed algorithms for the simulator — the upper-bound side of every
// experiment.
//
// Supported-model algorithms exploit 0-round preprocessing of the support
// graph (canonical colorings, src/sim/supported.hpp); the plain-LOCAL
// greedy MIS is included as the contrast that motivates [AAPR23]'s
// χ_G-round observation and the paper's matching lower bound (Theorem 1.7).
//
// Thread-safety contract (required by the batched CsrNetwork, upheld by
// every algorithm here): `on_round` may be called concurrently for
// different nodes, so per-node state lives in containers whose elements
// are independently addressable — std::vector<std::uint8_t>, never the
// bit-packed std::vector<bool> — and is only written at `node.index`.
// Shared preprocessing (canonical colorings, state sizing) happens lazily
// in `on_start`, which both simulators run serially. Randomness is a pure
// hash of (seed, uid, round), never a shared mutable generator.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/network.hpp"
#include "src/util/rng.hpp"

namespace slocal {

/// Supported-model MIS on the input graph in <= χ_greedy(G) - 1 rounds:
/// every node derives the same canonical coloring of the support graph
/// without communication and the color classes join greedily, one class per
/// round ([AAPR23]'s upper bound; experiment E9).
class ColorClassMis : public Algorithm {
 public:
  void on_start(const NodeContext& node, std::vector<Message>& out, bool& halt) override;
  void on_round(const NodeContext& node, std::size_t round,
                const std::vector<Message>& inbox, std::vector<Message>& out,
                bool& halt) override;

  std::vector<bool> in_mis() const { return {in_mis_.begin(), in_mis_.end()}; }

 private:
  void announce(const NodeContext& node, std::vector<Message>& out) const;

  std::vector<std::uint32_t> classes_;
  std::vector<std::uint8_t> in_mis_;
  std::vector<std::uint8_t> covered_;
};

/// Plain-LOCAL greedy MIS: an undecided node joins when its uid is minimal
/// among undecided input neighbors. Worst-case Θ(n) rounds (e.g. on a path
/// with sorted ids) — the baseline Supported preprocessing beats.
class GreedyUidMis : public Algorithm {
 public:
  void on_start(const NodeContext& node, std::vector<Message>& out, bool& halt) override;
  void on_round(const NodeContext& node, std::size_t round,
                const std::vector<Message>& inbox, std::vector<Message>& out,
                bool& halt) override;

  std::vector<bool> in_mis() const { return {in_mis_.begin(), in_mis_.end()}; }

 private:
  enum class State : std::uint8_t { kUndecided, kIn, kOut };
  std::vector<State> state_;
  std::vector<std::uint8_t> in_mis_;
};

/// Maximal matching of the input graph on a 2-colored support in O(Δ')
/// rounds by proposals: white nodes try their input edges one by one, black
/// nodes accept the first proposal. Matches the paper's Θ(Δ') tight bound
/// for maximal matching (x = 0, y = 1) shape (experiment E1).
class ProposalMatching : public Algorithm {
 public:
  void on_start(const NodeContext& node, std::vector<Message>& out, bool& halt) override;
  void on_round(const NodeContext& node, std::size_t round,
                const std::vector<Message>& inbox, std::vector<Message>& out,
                bool& halt) override;

  /// Matched incident-edge position per node (-1 = unmatched).
  const std::vector<std::int64_t>& matched_position() const { return matched_pos_; }

  /// Edge flags on the support graph (true = in matching).
  std::vector<bool> matched_edges(const Network& net) const;

 private:
  std::vector<std::int64_t> matched_pos_;
  std::vector<std::size_t> next_try_;
};

/// Supported-model α-arbdefective c-coloring of the input graph with
/// α = floor(Δ'/c), in <= χ_greedy(G) rounds: color classes decide in
/// order; each node picks the color minimizing conflicts with decided input
/// neighbors and orients conflict edges outward (experiment E3's upper
/// bound).
class ArbdefectiveColoring : public Algorithm {
 public:
  explicit ArbdefectiveColoring(std::size_t num_colors) : c_(num_colors) {}

  void on_start(const NodeContext& node, std::vector<Message>& out, bool& halt) override;
  void on_round(const NodeContext& node, std::size_t round,
                const std::vector<Message>& inbox, std::vector<Message>& out,
                bool& halt) override;

  const std::vector<std::uint32_t>& colors() const { return colors_; }
  /// outgoing_[v][i]: incident edge i of v oriented away from v.
  const std::vector<std::vector<bool>>& outgoing() const { return outgoing_; }

  /// Edge tails on the support graph (for is_arbdefective_coloring).
  std::vector<NodeId> edge_tails(const Network& net) const;

 private:
  void decide(const NodeContext& node, std::vector<Message>& out);

  std::size_t c_;
  std::vector<std::uint32_t> classes_;
  std::vector<std::uint32_t> colors_;
  std::vector<std::vector<std::int64_t>> neighbor_color_;  // -1 unknown
  std::vector<std::vector<bool>> outgoing_;
};

/// Supported-model (2, β)-ruling set of the input graph in <= χ_greedy(G)·β
/// rounds: classes decide every β rounds; joiners flood TTL-β coverage
/// tokens (experiment E4's upper-bound shape).
class BetaRulingSet : public Algorithm {
 public:
  explicit BetaRulingSet(std::size_t beta) : beta_(beta) {}

  void on_start(const NodeContext& node, std::vector<Message>& out, bool& halt) override;
  void on_round(const NodeContext& node, std::size_t round,
                const std::vector<Message>& inbox, std::vector<Message>& out,
                bool& halt) override;

  std::vector<bool> in_set() const { return {in_set_.begin(), in_set_.end()}; }

 private:
  std::size_t beta_;
  std::size_t num_classes_ = 0;
  std::vector<std::uint32_t> classes_;
  std::vector<std::uint8_t> in_set_;
  std::vector<std::uint8_t> covered_;
  std::vector<std::int64_t> max_ttl_sent_;
};

/// Luby-style randomized MIS (plain LOCAL): every round each undecided
/// node draws a random value and joins when it strictly beats all undecided
/// input neighbors (lexicographic tie-break by uid); neighbors of joiners
/// retire. O(log n) rounds with high probability — the randomized baseline
/// that Appendix C's derandomization lifting relates to the deterministic
/// complexity.
class LubyMis : public Algorithm {
 public:
  explicit LubyMis(std::uint64_t seed) : seed_(seed) {}

  void on_start(const NodeContext& node, std::vector<Message>& out, bool& halt) override;
  void on_round(const NodeContext& node, std::size_t round,
                const std::vector<Message>& inbox, std::vector<Message>& out,
                bool& halt) override;

  std::vector<bool> in_mis() const { return {in_mis_.begin(), in_mis_.end()}; }

 private:
  /// Draws are a pure hash of (seed, uid, round) — no shared generator, so
  /// concurrent per-node calls and any node evaluation order give the same
  /// run.
  void draw_and_send(const NodeContext& node, std::size_t round,
                     std::vector<Message>& out);

  std::uint64_t seed_;
  std::vector<std::int64_t> my_draw_;
  std::vector<std::uint8_t> in_mis_;
};

/// Cole–Vishkin 3-coloring of a directed ring (plain LOCAL, no support
/// knowledge): iterated bit-index color reduction from the uids down to 6
/// colors, then three shift-down rounds to 3. O(log* n) rounds — with
/// 64-bit identifiers the reduction schedule is 4 + 3 rounds. The ring
/// must be built by make_cycle (edge id i leads from node i to node i+1,
/// which is how nodes derive the common orientation).
class RingColoring : public Algorithm {
 public:
  void on_start(const NodeContext& node, std::vector<Message>& out, bool& halt) override;
  void on_round(const NodeContext& node, std::size_t round,
                const std::vector<Message>& inbox, std::vector<Message>& out,
                bool& halt) override;

  const std::vector<std::uint32_t>& colors() const { return colors_; }

 private:
  static constexpr std::size_t kCvRounds = 4;  // 64-bit ids -> 6 colors

  std::size_t successor_port(const NodeContext& node) const;

  std::vector<std::int64_t> color_;      // evolving color per node
  std::vector<std::uint32_t> colors_;    // final output
};

}  // namespace slocal
