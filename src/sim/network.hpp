// Synchronous message-passing simulator for the LOCAL and Supported LOCAL
// models (Section 2).
//
// Computation proceeds in synchronous rounds; per round every live node
// reads the messages its neighbors sent in the previous round, updates
// state, and emits one (arbitrary-size) message per incident support edge.
// A node halts when it has produced its final output; the run's round
// complexity is the round in which the last node halts.
//
// Supported mode: every NodeContext carries the full support graph and all
// identifiers (the model's "complete information about G"), plus only the
// node's *own* incident input-edge flags — the topology of G' beyond that
// must be learned by communication, exactly as the model prescribes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/graph/graph.hpp"

namespace slocal {

using Message = std::vector<std::int64_t>;

struct NodeContext {
  std::size_t index = 0;   // position in the network (not the identifier)
  std::uint64_t uid = 0;   // unique identifier
  std::size_t n = 0;       // number of nodes of the support graph
  std::size_t max_degree = 0;        // Δ of the support graph
  std::size_t max_input_degree = 0;  // Δ' (known to nodes per the model)
  std::int32_t color = 0;  // harness-provided 2-coloring (0 white / 1 black)

  std::vector<EdgeId> incident;        // support edges, stable order
  std::vector<std::size_t> neighbors;  // node indices, aligned with incident
  std::vector<bool> edge_in_input;     // aligned with incident

  // Supported LOCAL extras (nullptr / empty in plain LOCAL mode).
  const Graph* support = nullptr;
  const std::vector<std::uint64_t>* all_uids = nullptr;
};

/// A distributed algorithm. Implementations keep per-node state in their
/// own containers indexed by NodeContext::index.
class Algorithm {
 public:
  virtual ~Algorithm() = default;

  /// Called once per node before round 1; `out` (aligned with incident
  /// edges) holds the messages for round 1. Set halt=true for 0-round
  /// termination (messages still delivered).
  virtual void on_start(const NodeContext& node, std::vector<Message>& out,
                        bool& halt) = 0;

  /// One round: `inbox[i]` is the message received along incident edge i
  /// (empty if none). Fill `out` for the next round; set halt=true once the
  /// node's output is final.
  virtual void on_round(const NodeContext& node, std::size_t round,
                        const std::vector<Message>& inbox,
                        std::vector<Message>& out, bool& halt) = 0;
};

struct RunResult {
  std::size_t rounds = 0;          // rounds of communication until the last halt
  bool completed = false;          // false if max_rounds was hit first
  std::uint64_t messages_sent = 0; // non-empty messages across the run
};

class Network {
 public:
  /// Value for halt_rounds() entries of nodes that never halted.
  static constexpr std::size_t kNotHalted = static_cast<std::size_t>(-1);

  /// Plain LOCAL network. `uids` defaults to 1..n when empty.
  Network(const Graph& graph, std::vector<std::uint64_t> uids = {});

  /// Supported LOCAL network: support graph + per-edge input flags.
  Network(const Graph& support, const std::vector<bool>& input_edges,
          std::vector<std::uint64_t> uids = {});

  /// Sets a 2-coloring exposed through NodeContext::color.
  void set_colors(std::vector<std::int32_t> colors);

  RunResult run(Algorithm& algorithm, std::size_t max_rounds = 10'000);

  const NodeContext& context(std::size_t index) const { return contexts_[index]; }
  std::size_t node_count() const { return contexts_.size(); }

  /// Per-node halt round of the last run (0 = halted in on_start,
  /// kNotHalted = still live when the run stopped).
  const std::vector<std::size_t>& halt_rounds() const { return halt_rounds_; }

  /// The input graph (equal to the support graph in plain LOCAL mode).
  Graph input_graph() const;
  const Graph& support_graph() const { return graph_; }

 private:
  void build_contexts(bool supported);

  Graph graph_;  // stored by value: the network owns its topology
  std::vector<bool> input_edges_;
  std::vector<std::uint64_t> uids_;
  std::vector<NodeContext> contexts_;
  std::vector<std::size_t> halt_rounds_;
  bool supported_ = false;
};

}  // namespace slocal
