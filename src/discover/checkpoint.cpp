#include "src/discover/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/formalism/canonical.hpp"
#include "src/formalism/serialize.hpp"
#include "src/util/atomic_file.hpp"

namespace slocal::discover {

namespace {

/// Chains and frontiers larger than these are not legitimate checkpoints
/// (the driver's own limits are far below); bounding them here keeps a
/// corrupted count from driving a multi-gigabyte parse.
constexpr std::size_t kMaxChain = 4096;
constexpr std::size_t kMaxFrontier = 1 << 20;
constexpr std::size_t kMaxVisited = 1 << 24;

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

void write_hex(std::ostream& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  out << buf;
}

bool read_hex(std::istream& in, std::uint64_t* v) {
  std::string token;
  if (!(in >> token) || token.size() != 16) return false;
  std::uint64_t parsed = 0;
  for (const char c : token) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    parsed = (parsed << 4) | static_cast<std::uint64_t>(digit);
  }
  *v = parsed;
  return true;
}

}  // namespace

std::string serialize_frontier_checkpoint(const FrontierCheckpoint& cp) {
  std::ostringstream out;
  out << "search " << cp.target_length << ' ' << cp.next_seq << ' '
      << cp.expansions << ' ' << cp.nodes_spent << ' ' << cp.finds_emitted << ' '
      << (cp.definitive ? 1 : 0) << '\n';
  out << "visited " << cp.visited.size() << '\n';
  for (const std::uint64_t fp : cp.visited) {
    write_hex(out, fp);
    out << '\n';
  }
  out << "frontier " << cp.frontier.size() << '\n';
  for (const FrontierNode& node : cp.frontier) {
    out << "node " << node.score << ' ' << node.seq << ' ' << node.chain.size()
        << '\n';
    for (std::size_t i = 0; i < node.chain.size(); ++i) {
      out << "fp ";
      write_hex(out, node.fingerprints[i]);
      out << '\n';
      write_problem(out, node.chain[i]);
    }
  }
  const std::string payload = out.str();
  char checksum_line[40];
  std::snprintf(checksum_line, sizeof(checksum_line), "checksum %016llx\n",
                static_cast<unsigned long long>(fnv1a_bytes(payload)));
  return "slocal-discover 1\n" + std::string(checksum_line) + payload;
}

bool save_frontier_checkpoint(const FrontierCheckpoint& cp, const std::string& path,
                              std::string* error) {
  std::string io_error;
  if (!write_file_atomic(path, serialize_frontier_checkpoint(cp), &io_error)) {
    return fail(error, "discover-checkpoint: " + io_error);
  }
  return true;
}

bool load_frontier_checkpoint(const std::string& path, FrontierCheckpoint* out,
                              std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return fail(error, "discover-checkpoint: cannot open '" + path + "'");
  }
  std::string magic;
  if (!std::getline(file, magic)) {
    return fail(error, "discover-checkpoint: '" + path + "' is not a checkpoint");
  }
  if (magic != "slocal-discover 1") {
    return fail(error, magic.rfind("slocal-discover", 0) == 0
                           ? "discover-checkpoint: unsupported version ('" +
                                 magic + "')"
                           : "discover-checkpoint: '" + path +
                                 "' is not a checkpoint");
  }
  std::string checksum_text;
  if (!std::getline(file, checksum_text) || checksum_text.size() != 9 + 16 ||
      checksum_text.compare(0, 9, "checksum ") != 0) {
    return fail(error, "discover-checkpoint: malformed checksum line");
  }
  std::uint64_t stored_checksum = 0;
  {
    std::istringstream hex(checksum_text.substr(9));
    if (!(hex >> std::hex >> stored_checksum)) {
      return fail(error, "discover-checkpoint: malformed checksum line");
    }
  }
  std::ostringstream raw;
  raw << file.rdbuf();
  const std::string payload = raw.str();
  if (fnv1a_bytes(payload) != stored_checksum) {
    return fail(error,
                "discover-checkpoint: payload checksum mismatch (corrupt file)");
  }

  // Parse and validate everything into a local object; *out is only
  // written after the last byte checked out.
  FrontierCheckpoint cp;
  std::istringstream in(payload);
  std::string tag;
  int definitive = 0;
  if (!(in >> tag >> cp.target_length >> cp.next_seq >> cp.expansions >>
        cp.nodes_spent >> cp.finds_emitted >> definitive) ||
      tag != "search" || (definitive != 0 && definitive != 1)) {
    return fail(error, "discover-checkpoint: malformed search header");
  }
  cp.definitive = definitive == 1;
  if (cp.target_length == 0 || cp.target_length > kMaxChain) {
    return fail(error, "discover-checkpoint: target length out of range");
  }

  std::size_t visited_count = 0;
  if (!(in >> tag >> visited_count) || tag != "visited" ||
      visited_count > kMaxVisited) {
    return fail(error, "discover-checkpoint: malformed visited count");
  }
  cp.visited.reserve(visited_count);
  for (std::size_t i = 0; i < visited_count; ++i) {
    std::uint64_t fp = 0;
    if (!read_hex(in, &fp)) {
      return fail(error, "discover-checkpoint: malformed visited fingerprint");
    }
    if (i > 0 && fp <= cp.visited.back()) {
      return fail(error, "discover-checkpoint: visited set not sorted");
    }
    cp.visited.push_back(fp);
  }

  std::size_t frontier_count = 0;
  if (!(in >> tag >> frontier_count) || tag != "frontier" ||
      frontier_count > kMaxFrontier) {
    return fail(error, "discover-checkpoint: malformed frontier count");
  }
  cp.frontier.reserve(frontier_count);
  for (std::size_t i = 0; i < frontier_count; ++i) {
    FrontierNode node;
    std::size_t chain_length = 0;
    if (!(in >> tag >> node.score >> node.seq >> chain_length) || tag != "node" ||
        chain_length == 0 || chain_length > kMaxChain) {
      return fail(error, "discover-checkpoint: malformed frontier node");
    }
    node.chain.reserve(chain_length);
    node.fingerprints.reserve(chain_length);
    for (std::size_t j = 0; j < chain_length; ++j) {
      std::uint64_t fp = 0;
      if (!(in >> tag) || tag != "fp" || !read_hex(in, &fp)) {
        return fail(error, "discover-checkpoint: malformed chain fingerprint");
      }
      Problem p;
      if (!read_problem(in, "chain_" + std::to_string(j), &p, error,
                        "discover-checkpoint")) {
        return false;
      }
      // Defense in depth beyond the checksum: the stored fingerprint must
      // really be the canonical fingerprint of the stored problem, pinning
      // the file to the in-process canonicalization (a checkpoint from an
      // incompatible build is rejected, not silently mis-deduplicated).
      if (canonical_fingerprint(p) != fp) {
        return fail(error,
                    "discover-checkpoint: chain fingerprint does not match "
                    "its problem");
      }
      node.fingerprints.push_back(fp);
      node.chain.push_back(std::move(p));
    }
    cp.frontier.push_back(std::move(node));
  }
  if (in >> tag) {
    return fail(error, "discover-checkpoint: trailing data after frontier");
  }
  *out = std::move(cp);
  return true;
}

}  // namespace slocal::discover
