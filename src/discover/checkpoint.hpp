// The "slocal-discover 1" frontier checkpoint — crash-safe persistence for
// long discovery runs, in the mold of the RE cache's on-disk format.
//
//   slocal-discover 1
//   checksum <16 hex digits>
//   <payload…>
//
// The checksum is FNV-1a over every raw payload byte, so any single-byte
// flip anywhere in the file — header, counters, problem rows — fails the
// load before one payload token is interpreted (tests/fuzz_test.cpp flips
// them all). The payload carries the search invariants a resumed run needs
// to be outcome-equivalent to an uninterrupted one: the target, the
// steering counters (expansions, nodes spent), the definitiveness flag, the
// visited fingerprint set, and every frontier node with its score, insertion
// sequence, chain problems (structure only — canonical registries are
// synthetic), and per-element fingerprints.
//
// Saves go through write_file_atomic (write-temp + fsync + rename): a
// process SIGKILLed mid-save leaves the previous complete checkpoint or the
// new complete one, never a torn file (the serve_test soak kills children
// at random write offsets to pin this for every persisted format).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/formalism/problem.hpp"

namespace slocal::discover {

/// One open chain on the frontier. Scores are persisted (not re-derived) so
/// a resume expands in exactly the order the interrupted run would have.
struct FrontierNode {
  std::uint64_t score = 0;
  std::uint64_t seq = 0;  ///< insertion order, the deterministic tie-break
  std::vector<Problem> chain;
  std::vector<std::uint64_t> fingerprints;  ///< canonical, per element
};

struct FrontierCheckpoint {
  std::size_t target_length = 1;
  std::uint64_t next_seq = 0;
  std::uint64_t expansions = 0;   ///< steering + max_expansions accounting
  std::uint64_t nodes_spent = 0;  ///< steering: deterministic engine-node sum
  std::uint64_t finds_emitted = 0;
  /// False once any beam eviction or engine resource failure happened: an
  /// empty frontier then means "exhausted", not a definitive "none".
  bool definitive = true;
  std::vector<std::uint64_t> visited;      ///< sorted ascending
  std::vector<FrontierNode> frontier;      ///< (score, seq) order
};

/// The exact byte stream `save` persists; exposed so tests can tear it.
std::string serialize_frontier_checkpoint(const FrontierCheckpoint& cp);

/// Atomic write of serialize_frontier_checkpoint. False on I/O failure.
bool save_frontier_checkpoint(const FrontierCheckpoint& cp, const std::string& path,
                              std::string* error);

/// Exhaustive validation: header, whole-payload checksum, token grammar,
/// counts, label ranges, sortedness, and per-element fingerprint
/// consistency. Rejects the whole file on any mismatch (*out untouched) —
/// a damaged checkpoint can never seed a wrong search state.
bool load_frontier_checkpoint(const std::string& path, FrontierCheckpoint* out,
                              std::string* error);

}  // namespace slocal::discover
