#include "src/discover/discover.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "src/cert/emit.hpp"
#include "src/discover/checkpoint.hpp"
#include "src/formalism/canonical.hpp"
#include "src/formalism/relaxation.hpp"
#include "src/re/round_elimination.hpp"
#include "src/re/sequence.hpp"

namespace slocal::discover {

namespace {

/// Engine nodes below this are pointless (a search that cannot even probe
/// its first assignments only churns); the steering rule never hands an
/// expansion less.
constexpr std::uint64_t kMinStepNodes = 1'024;
constexpr std::uint64_t kDefaultStepNodes = 200'000;

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Sum of the deterministic node-like counters of one RE application — the
/// currency the steering rule accounts in.
std::uint64_t re_nodes(const REStats& s) {
  return s.dfs_nodes + s.domination_tests + s.relaxed_multisets;
}

/// Quotient of `p` under the merge of label `hi` into label `lo` (hi > lo):
/// the image problem of the surjective renaming, which contains every
/// mapped configuration by construction — so the renaming itself witnesses
/// that the quotient is a relaxation of `p`.
Problem merge_labels(const Problem& p, Label lo, Label hi) {
  const std::size_t n = p.alphabet_size();
  LabelRegistry registry;
  std::vector<Label> map(n, 0);
  for (std::size_t l = 0, next = 0; l < n; ++l) {
    if (l == hi) {
      map[l] = map[lo];
    } else {
      map[l] = static_cast<Label>(next++);
      registry.intern(l == lo ? p.registry().name(lo) + "+" + p.registry().name(hi)
                              : p.registry().name(static_cast<Label>(l)));
    }
  }
  Constraint white(p.white_degree()), black(p.black_degree());
  for (const Configuration& c : p.white().members()) {
    std::vector<Label> labels;
    labels.reserve(c.size());
    for (const Label l : c.labels()) labels.push_back(map[l]);
    white.add(Configuration(std::move(labels)));
  }
  for (const Configuration& c : p.black().members()) {
    std::vector<Label> labels;
    labels.reserve(c.size());
    for (const Label l : c.labels()) labels.push_back(map[l]);
    black.add(Configuration(std::move(labels)));
  }
  return Problem(p.name() + "/merge", std::move(registry), std::move(white),
                 std::move(black));
}

}  // namespace

bool zero_round_trivial(const Problem& p) {
  const std::size_t degree = p.black_degree();
  for (const Configuration& c : p.white().sorted_members()) {
    std::set<Label> label_set(c.labels().begin(), c.labels().end());
    const std::vector<Label> labels(label_set.begin(), label_set.end());
    // Every degree-multiset over the configuration's label set must be a
    // black configuration; enumerate them as nondecreasing index vectors.
    std::vector<std::size_t> index(degree, 0);
    bool all_valid = true;
    while (true) {
      std::vector<Label> choice;
      choice.reserve(degree);
      for (const std::size_t i : index) choice.push_back(labels[i]);
      if (!p.black().contains(Configuration(std::move(choice)))) {
        all_valid = false;
        break;
      }
      std::size_t pos = degree;
      bool done = true;
      while (pos-- > 0) {
        if (index[pos] + 1 < labels.size()) {
          const std::size_t bumped = ++index[pos];
          for (std::size_t j = pos + 1; j < degree; ++j) index[j] = bumped;
          done = false;
          break;
        }
      }
      if (done) break;
    }
    if (all_valid) return true;
  }
  return false;
}

std::uint64_t SmallFirstHeuristic::score(const CandidateView& view) const {
  const Problem& p = *view.problem;
  const std::uint64_t size =
      p.alphabet_size() * 1'000'000 +
      (p.white().size() + p.black().size()) * 100;
  return size / (view.depth + 1);
}

const char* to_string(DiscoverStatus s) {
  switch (s) {
    case DiscoverStatus::kFound: return "found";
    case DiscoverStatus::kNone: return "none";
    case DiscoverStatus::kExhausted: return "exhausted";
    case DiscoverStatus::kCorrupt: return "corrupt";
  }
  return "?";
}

std::string DiscoverStats::to_string() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "expansions=%llu frontier_peak=%llu generated=%llu deduped=%llu "
      "trivial=%llu accepted=%llu evicted=%llu pool_rejected=%llu pumps=%llu "
      "re_failures=%llu nodes=%llu cache_hits=%llu cache_misses=%llu "
      "certs=%llu checkpoints=%llu resumed=%d",
      static_cast<unsigned long long>(expansions),
      static_cast<unsigned long long>(frontier_peak),
      static_cast<unsigned long long>(candidates_generated),
      static_cast<unsigned long long>(candidates_deduped),
      static_cast<unsigned long long>(candidates_trivial),
      static_cast<unsigned long long>(candidates_accepted),
      static_cast<unsigned long long>(beam_evictions),
      static_cast<unsigned long long>(pool_rejections),
      static_cast<unsigned long long>(pumps_found),
      static_cast<unsigned long long>(re_failures),
      static_cast<unsigned long long>(nodes_spent),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(certs_emitted),
      static_cast<unsigned long long>(checkpoints_written), resumed ? 1 : 0);
  return buf;
}

namespace {

/// The whole search state plus the option-derived knobs, so the main loop
/// and its helpers share one object instead of a dozen parameters.
class Searcher {
 public:
  Searcher(const std::vector<Problem>& family, const DiscoverOptions& options,
           DiscoverResult* result)
      : family_(family),
        options_(options),
        result_(result),
        heuristic_(options.heuristic != nullptr ? *options.heuristic
                                                : default_heuristic_),
        cache_(options.cache != nullptr ? *options.cache : local_cache_) {
    target_ = std::max<std::size_t>(1, options_.target_length);
    beam_ = std::max<std::size_t>(1, options_.beam_width);
    max_finds_ = std::max<std::size_t>(1, options_.max_finds);
    step_nodes_ =
        options_.step_nodes == 0 ? kDefaultStepNodes : options_.step_nodes;
  }

  DiscoverStatus run() {
    if (!options_.checkpoint_path.empty() &&
        std::ifstream(options_.checkpoint_path).good()) {
      std::string error;
      FrontierCheckpoint cp;
      if (!load_frontier_checkpoint(options_.checkpoint_path, &cp, &error)) {
        log() << "checkpoint rejected: " << error << '\n';
        return DiscoverStatus::kCorrupt;
      }
      restore(std::move(cp));
    } else {
      seed_roots();
    }

    while (true) {
      stats().frontier_peak =
          std::max(stats().frontier_peak,
                   static_cast<std::uint64_t>(frontier_.size()));
      trim_beam();
      if (finds_ >= max_finds_) return DiscoverStatus::kFound;
      if (frontier_.empty()) {
        return finds_ > 0 ? DiscoverStatus::kFound
               : definitive_ ? DiscoverStatus::kNone
                             : exhausted();
      }
      if (out_of_budget()) {
        return finds_ > 0 ? DiscoverStatus::kFound : exhausted();
      }
      FrontierNode node = pop_best();
      expand(std::move(node));
      if (options_.checkpoint_every > 0 &&
          stats().expansions % options_.checkpoint_every == 0) {
        write_checkpoint();
      }
    }
  }

  /// Terminal bookkeeping: persist on exhaustion (resume material), remove
  /// a stale checkpoint on a definitive outcome.
  void finish(DiscoverStatus status) {
    if (options_.checkpoint_path.empty() || status == DiscoverStatus::kCorrupt) {
      return;
    }
    if (status == DiscoverStatus::kExhausted) {
      write_checkpoint();
    } else {
      std::remove(options_.checkpoint_path.c_str());
    }
  }

  std::ostringstream& log() { return log_; }
  std::string take_log() { return log_.str(); }
  DiscoverStats& stats() { return result_->stats; }

 private:
  DiscoverStatus exhausted() const { return DiscoverStatus::kExhausted; }

  bool out_of_budget() {
    if (options_.budget != nullptr && options_.budget->halted()) {
      log() << "halt budget\n";
      return true;
    }
    if (options_.max_expansions > 0 &&
        stats().expansions >= options_.max_expansions) {
      log() << "halt expansions\n";
      return true;
    }
    if (options_.total_nodes > 0 && nodes_spent_ >= options_.total_nodes) {
      log() << "halt nodes\n";
      return true;
    }
    return false;
  }

  void seed_roots() {
    log() << "discover family=" << family_.size() << " target=" << target_
          << " beam=" << beam_ << '\n';
    for (std::size_t i = 0; i < family_.size(); ++i) {
      const CanonicalForm cf = canonicalize(family_[i]);
      log() << "root " << i << " fp=" << hex16(cf.fingerprint)
            << " sigma=" << family_[i].alphabet_size()
            << " w=" << family_[i].white().size()
            << " b=" << family_[i].black().size();
      if (zero_round_trivial(family_[i])) {
        ++stats().candidates_trivial;
        log() << " trivial\n";
        continue;
      }
      if (visited_.contains(cf.fingerprint)) {
        ++stats().candidates_deduped;
        log() << " deduped\n";
        continue;
      }
      visited_.insert(cf.fingerprint);
      CandidateView view;
      view.problem = &family_[i];
      view.depth = 0;
      view.origin = CandidateView::Origin::kRoot;
      FrontierNode node;
      node.score = heuristic_.score(view);
      node.seq = next_seq_++;
      node.chain.push_back(family_[i]);
      node.fingerprints.push_back(cf.fingerprint);
      log() << " score=" << node.score << '\n';
      frontier_.push_back(std::move(node));
    }
  }

  void restore(FrontierCheckpoint cp) {
    target_ = cp.target_length;
    next_seq_ = cp.next_seq;
    stats().expansions = cp.expansions;
    nodes_spent_ = cp.nodes_spent;
    stats().nodes_spent = cp.nodes_spent;
    finds_ = cp.finds_emitted;
    definitive_ = cp.definitive;
    visited_.insert(cp.visited.begin(), cp.visited.end());
    frontier_ = std::move(cp.frontier);
    stats().resumed = true;
    log() << "resume frontier=" << frontier_.size()
          << " visited=" << visited_.size()
          << " expansions=" << stats().expansions << '\n';
  }

  void sort_frontier() {
    std::sort(frontier_.begin(), frontier_.end(),
              [](const FrontierNode& a, const FrontierNode& b) {
                return a.score != b.score ? a.score < b.score : a.seq < b.seq;
              });
  }

  void trim_beam() {
    if (frontier_.size() <= beam_) return;
    sort_frontier();
    const std::size_t evicted = frontier_.size() - beam_;
    stats().beam_evictions += evicted;
    definitive_ = false;
    frontier_.resize(beam_);
    log() << "evict " << evicted << '\n';
  }

  FrontierNode pop_best() {
    sort_frontier();
    FrontierNode node = std::move(frontier_.front());
    frontier_.erase(frontier_.begin());
    return node;
  }

  /// The deterministic steering rule: with a total pool, the remaining
  /// nodes are split evenly over the live beam slots (this node plus the
  /// rest of the frontier, capped at the beam width), so an expansion that
  /// comes back cheap leaves its unspent share to the later slots.
  std::uint64_t step_cap() const {
    if (options_.total_nodes == 0) return step_nodes_;
    const std::uint64_t remaining =
        options_.total_nodes > nodes_spent_ ? options_.total_nodes - nodes_spent_
                                            : 0;
    const std::uint64_t slots = static_cast<std::uint64_t>(
        std::min(beam_, frontier_.size() + 1));
    return std::max(kMinStepNodes, remaining / std::max<std::uint64_t>(1, slots));
  }

  void charge(std::uint64_t nodes) {
    nodes_spent_ += nodes;
    stats().nodes_spent = nodes_spent_;
  }

  RelaxationOptions relaxation_options(std::uint64_t cap) const {
    RelaxationOptions ro;
    // Finite budgets force the engines' deterministic serial paths; the
    // threads knob only matters to them when budgets are unlimited, which
    // the driver never requests.
    ro.node_budget = cap;
    ro.threads = 1;
    ro.budget = options_.budget;
    return ro;
  }

  void expand(FrontierNode node) {
    ++stats().expansions;
    const std::uint64_t cap = step_cap();
    const Problem& tip = node.chain.back();
    const std::size_t depth = node.chain.size() - 1;
    log() << "expand " << stats().expansions << " depth=" << depth
          << " fp=" << hex16(node.fingerprints.back()) << " cap=" << cap << '\n';

    REOptions re_options;
    re_options.threads = options_.threads;
    re_options.max_nodes = cap;
    re_options.budget = options_.budget;
    re_options.cache = &cache_;
    REStats re_stats;
    re_options.stats = &re_stats;
    const std::optional<Problem> re = round_eliminate(tip, re_options);
    charge(re_nodes(re_stats));
    stats().cache_hits += re_stats.cache_hits;
    stats().cache_misses += re_stats.cache_misses;
    if (!re) {
      ++stats().re_failures;
      definitive_ = false;
      log() << "  re " << (re_stats.budget_exhausted > 0 ? "exhausted" : "capped")
            << '\n';
      return;
    }
    log() << "  re fp=" << hex16(canonical_fingerprint(*re))
          << " sigma=" << re->alphabet_size() << " w=" << re->white().size()
          << " b=" << re->black().size() << '\n';

    // Pump test — is the tip a relaxation of its own RE? Then the chain
    // extends to any length by repetition (the fixed-point shape).
    const Verdict pump = relaxes_to(*re, tip, cap);
    if (pump == Verdict::kYes) {
      ++stats().pumps_found;
      log() << "  pump yes\n";
      std::vector<Problem> chain = node.chain;
      std::vector<std::uint64_t> fps = node.fingerprints;
      while (chain.size() < target_ + 1) {
        chain.push_back(chain.back());
        fps.push_back(fps.back());
      }
      emit_find(std::move(chain), std::move(fps), true);
      return;
    }
    log() << "  pump " << (pump == Verdict::kNo ? "no" : "exhausted") << '\n';
    if (pump == Verdict::kExhausted) definitive_ = false;
    if (depth + 1 > target_) return;  // complete chains are emitted, not grown

    // Pool moves: family members admitted by a relaxation witness from the
    // RE. Deduplicated against this chain only — a family member may serve
    // in many chains (and as a root), just not twice in one.
    for (std::size_t i = 0; i < family_.size(); ++i) {
      if (finds_ >= max_finds_) return;
      const CanonicalForm cf = canonicalize(family_[i]);
      if (std::find(node.fingerprints.begin(), node.fingerprints.end(),
                    cf.fingerprint) != node.fingerprints.end()) {
        continue;
      }
      ++stats().candidates_generated;
      if (zero_round_trivial(family_[i])) {
        ++stats().candidates_trivial;
        continue;
      }
      const Verdict verdict = relaxes_to(*re, family_[i], cap);
      if (verdict != Verdict::kYes) {
        ++stats().pool_rejections;
        if (verdict == Verdict::kExhausted) definitive_ = false;
        log() << "  pool " << i << " fp=" << hex16(cf.fingerprint) << ' '
              << (verdict == Verdict::kNo ? "no" : "exhausted") << '\n';
        continue;
      }
      log() << "  pool " << i << " fp=" << hex16(cf.fingerprint) << " yes\n";
      accept_child(node, family_[i], cf.fingerprint, false);
    }
    if (finds_ >= max_finds_) return;

    // Identity move: the RE itself (a relaxation by the identity map).
    consider_generic(node, *re, "identity");
    if (finds_ >= max_finds_) return;

    // Merge moves: quotients under every single label merge; the quotient
    // map witnesses the relaxation by construction.
    const std::size_t n = re->alphabet_size();
    for (Label lo = 0; lo < n; ++lo) {
      for (Label hi = static_cast<Label>(lo + 1); hi < n; ++hi) {
        if (finds_ >= max_finds_) return;
        consider_generic(node, merge_labels(*re, lo, hi), "merge");
      }
    }
  }

  /// The relaxation ladder of verify_lower_bound_sequence: cheap per-label
  /// map first, bounded exact witness search second. Both under finite
  /// budgets (deterministic serial paths).
  Verdict relaxes_to(const Problem& from, const Problem& to, std::uint64_t cap) {
    const LabelMapResult by_map =
        find_relaxation_label_map(from, to, relaxation_options(cap));
    charge(by_map.nodes);
    if (by_map.verdict == Verdict::kYes) return Verdict::kYes;
    const WitnessResult by_witness =
        find_relaxation_witness(from, to, relaxation_options(cap));
    charge(by_witness.nodes);
    if (by_witness.verdict == Verdict::kYes) return Verdict::kYes;
    return by_map.verdict == Verdict::kExhausted ? Verdict::kExhausted
                                                 : by_witness.verdict;
  }

  /// Generic (identity / merge) candidates deduplicate globally through the
  /// visited fingerprint set — unlike pool members, revisiting one through
  /// another chain cannot reach anything new at equal or lower cost.
  void consider_generic(const FrontierNode& parent, Problem candidate,
                        const char* tag) {
    ++stats().candidates_generated;
    if (zero_round_trivial(candidate)) {
      ++stats().candidates_trivial;
      return;
    }
    const CanonicalForm cf = canonicalize(candidate);
    if (visited_.contains(cf.fingerprint)) {
      ++stats().candidates_deduped;
      return;
    }
    visited_.insert(cf.fingerprint);
    log() << "  " << tag << " fp=" << hex16(cf.fingerprint)
          << " sigma=" << candidate.alphabet_size() << '\n';
    accept_child(parent, std::move(candidate), cf.fingerprint, true);
  }

  void accept_child(const FrontierNode& parent, Problem candidate,
                    std::uint64_t fingerprint, bool generic) {
    ++stats().candidates_accepted;
    std::vector<Problem> chain = parent.chain;
    chain.push_back(std::move(candidate));
    std::vector<std::uint64_t> fps = parent.fingerprints;
    fps.push_back(fingerprint);
    if (chain.size() == target_ + 1) {
      emit_find(std::move(chain), std::move(fps), false);
      return;
    }
    CandidateView view;
    view.problem = &chain.back();
    view.depth = chain.size() - 1;
    view.origin = generic ? CandidateView::Origin::kMerge
                          : CandidateView::Origin::kPool;
    FrontierNode child;
    child.score = heuristic_.score(view);
    child.seq = next_seq_++;
    child.chain = std::move(chain);
    child.fingerprints = std::move(fps);
    frontier_.push_back(std::move(child));
  }

  /// Re-verifies the chain end to end and packages the certificate. The
  /// emission pass runs with threads = 1 and unlimited nodes: RE steps are
  /// cache hits from the search, the relaxation searches are deterministic,
  /// and the resulting bytes are identical for every driver thread count.
  void emit_find(std::vector<Problem> chain, std::vector<std::uint64_t> fps,
                 bool pumped) {
    REOptions emit_options;
    emit_options.threads = 1;
    emit_options.budget = options_.budget;
    emit_options.cache = &cache_;
    REStats emit_stats;
    emit_options.stats = &emit_stats;
    SequenceReport report;
    std::optional<cert::Certificate> certificate =
        cert::make_sequence_certificate(chain, emit_options, &report);
    stats().cache_hits += emit_stats.cache_hits;
    stats().cache_misses += emit_stats.cache_misses;
    if (!certificate.has_value()) {
      // A chain the search verified step by step failed the (stricter,
      // budget-free) emission pass: drop it rather than claim it.
      definitive_ = false;
      log() << "  emit failed steps=" << chain.size() - 1 << '\n';
      return;
    }
    ++finds_;
    ++stats().certs_emitted;
    log() << "found " << finds_ << " steps=" << chain.size() - 1
          << " pumped=" << (pumped ? 1 : 0) << " fps=";
    for (std::size_t i = 0; i < fps.size(); ++i) {
      log() << (i > 0 ? "," : "") << hex16(fps[i]);
    }
    log() << '\n';
    Discovery find;
    find.chain = std::move(chain);
    find.fingerprints = std::move(fps);
    find.pumped = pumped;
    find.certificate = std::move(*certificate);
    result_->found.push_back(std::move(find));
  }

  void write_checkpoint() {
    if (options_.checkpoint_path.empty()) return;
    FrontierCheckpoint cp;
    cp.target_length = target_;
    cp.next_seq = next_seq_;
    cp.expansions = stats().expansions;
    cp.nodes_spent = nodes_spent_;
    cp.finds_emitted = finds_;
    cp.definitive = definitive_;
    cp.visited.assign(visited_.begin(), visited_.end());
    cp.frontier = frontier_;
    sort_nodes(&cp.frontier);
    std::string error;
    if (save_frontier_checkpoint(cp, options_.checkpoint_path, &error)) {
      ++stats().checkpoints_written;
    } else {
      log() << "checkpoint write failed: " << error << '\n';
    }
  }

  static void sort_nodes(std::vector<FrontierNode>* nodes) {
    std::sort(nodes->begin(), nodes->end(),
              [](const FrontierNode& a, const FrontierNode& b) {
                return a.score != b.score ? a.score < b.score : a.seq < b.seq;
              });
  }

  const std::vector<Problem>& family_;
  const DiscoverOptions& options_;
  DiscoverResult* result_;
  SmallFirstHeuristic default_heuristic_;
  const Heuristic& heuristic_;
  RECache local_cache_;
  RECache& cache_;

  std::size_t target_ = 1;
  std::size_t beam_ = 4;
  std::size_t max_finds_ = 1;
  std::uint64_t step_nodes_ = kDefaultStepNodes;

  std::ostringstream log_;
  std::vector<FrontierNode> frontier_;
  std::set<std::uint64_t> visited_;  // ordered: checkpoints serialize sorted
  std::uint64_t next_seq_ = 0;
  std::uint64_t nodes_spent_ = 0;
  std::uint64_t finds_ = 0;
  bool definitive_ = true;
};

}  // namespace

DiscoverResult run_discovery(const std::vector<Problem>& family,
                             const DiscoverOptions& options) {
  DiscoverResult result;
  Searcher searcher(family, options, &result);
  result.status = searcher.run();
  searcher.finish(result.status);
  result.log = searcher.take_log();
  return result;
}

}  // namespace slocal::discover
