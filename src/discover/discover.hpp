// Automatic lower-bound discovery (the search side of Section 2's
// sequences, after "Towards Fully Automatic Distributed Lower Bounds").
//
// Given a problem family — an ordered pool of candidate problems, the first
// entries doubling as search roots — the driver explores the relaxation
// space for lower-bound-sequence witnesses: chains Π_0, …, Π_k in which
// every Π_i is a relaxation of RE(Π_{i-1}) and every element is non-trivial
// (not 0-round solvable in the port-numbering sense). Two kinds of find:
//
//  * a *pumpable* chain — the tip Π satisfies "Π is a relaxation of RE(Π)"
//    (the fixed-point shape of Lemma 5.4), so the chain extends to any
//    target length by repetition;
//  * a plain chain of the requested length, assembled step by step from the
//    move set below.
//
// Moves from a chain tip Π (candidate successors of R = RE(Π)):
//  * pool — family members not yet visited, admitted when the engines find
//    a relaxation witness from R (per-label map first, bounded exact
//    search second — the same ladder verify_lower_bound_sequence climbs);
//  * identity — R itself (a relaxation of itself by the identity map);
//  * merge — quotients of R under a single label merge (the image problem
//    of a surjective 2-to-1 renaming contains every mapped configuration
//    by construction, so the quotient map itself is the witness).
//
// The frontier is best-first over (heuristic score, insertion order) and
// trimmed to a beam; candidates deduplicate globally through canonical
// fingerprints (src/formalism/canonical.hpp), RE steps are answered through
// an optional RECache, and per-expansion engine budgets are steered
// deterministically: when a total node pool is set, each expansion receives
// remaining_pool / live_slots nodes, so cheap expansions (cache hits) leave
// more budget for later slots.
//
// Determinism contract: for a fixed family and options, the discovery log,
// the found chains, and every emitted certificate are byte-identical for
// every `threads` value. All engine searches run under finite node caps,
// which forces their deterministic serial paths (see REOptions::max_nodes
// and RelaxationOptions::node_budget); the driver itself expands strictly
// sequentially. Wall-clock deadlines and cancellation can only turn an
// outcome into kExhausted — never flip found/none (the no-verdict-flip
// guarantee extended to discovery).
//
// The driver is *untrusted*: every find is re-verified and packaged by
// cert::make_sequence_certificate, and the resulting `slocal-cert 1` file
// is checkable by the standalone cert_check binary, which shares no code
// with any of this.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/cert/format.hpp"
#include "src/formalism/problem.hpp"
#include "src/re/re_cache.hpp"
#include "src/util/budget.hpp"

namespace slocal::discover {

/// 0-round triviality in the port-numbering sense: Π is trivial when some
/// white configuration C exists such that every black_degree-multiset over
/// C's label set lies in C_B — then every white node outputs C and every
/// black constraint is met regardless of the support. Trivial problems
/// carry no lower bound, so the driver prunes them from chains.
bool zero_round_trivial(const Problem& p);

/// What a candidate looks like to the scoring heuristic.
struct CandidateView {
  const Problem* problem = nullptr;
  std::size_t depth = 0;  ///< verified steps in the chain ending here
  enum class Origin { kRoot, kPool, kIdentity, kMerge } origin = Origin::kRoot;
};

/// Pluggable frontier scorer. Lower scores expand first. Implementations
/// must be deterministic functions of the view (no clocks, no randomness) —
/// the score is part of the byte-identical discovery log.
class Heuristic {
 public:
  virtual ~Heuristic() = default;
  virtual std::uint64_t score(const CandidateView& view) const = 0;
};

/// Default: prefer small problems (alphabet dominates, then constraint
/// sizes) and reward depth — deep chains are close to the target length.
class SmallFirstHeuristic : public Heuristic {
 public:
  std::uint64_t score(const CandidateView& view) const override;
};

struct DiscoverOptions {
  /// Verified steps a chain needs to count as found (k in Π_0..Π_k).
  std::size_t target_length = 1;
  /// Frontier slots kept after each expansion; excess nodes are evicted
  /// (eviction downgrades a later empty-frontier "none" to "exhausted").
  std::size_t beam_width = 4;
  /// Expansion cap; 0 = unlimited. Hitting it is budget exhaustion.
  std::size_t max_expansions = 256;
  /// Stop after this many finds. 0 behaves as 1.
  std::size_t max_finds = 1;
  /// Engine threads (passed through to RE). The result is bit-identical
  /// for every value — finite node caps force the deterministic paths.
  std::size_t threads = 1;
  /// Per-engine-call node cap when no total pool steers it; 0 picks the
  /// default. Never unlimited: determinism requires finite caps.
  std::uint64_t step_nodes = 0;
  /// Total node pool across the whole search; 0 = no pool (every call gets
  /// step_nodes). When set, the steering rule splits the remaining pool
  /// over the live beam slots before each expansion.
  std::uint64_t total_nodes = 0;
  /// Optional wall-clock/cancel token, polled between engine calls and
  /// passed through to them. Tripping yields kExhausted.
  SearchBudget* budget = nullptr;
  /// Optional cross-run RE cache.
  RECache* cache = nullptr;
  /// Optional scorer; nullptr = SmallFirstHeuristic.
  const Heuristic* heuristic = nullptr;
  /// Crash-safe frontier checkpoint ("slocal-discover 1"): written every
  /// `checkpoint_every` expansions (and on exhaustion) when non-empty.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 0;
};

/// Deterministic counters (REStats-style; no wall times — every field is
/// identical run to run for fixed inputs).
struct DiscoverStats {
  std::uint64_t expansions = 0;          ///< frontier nodes expanded
  std::uint64_t frontier_peak = 0;       ///< max frontier size observed
  std::uint64_t candidates_generated = 0;///< successors proposed by the moves
  std::uint64_t candidates_deduped = 0;  ///< dropped by the fingerprint set
  std::uint64_t candidates_trivial = 0;  ///< dropped by zero_round_trivial
  std::uint64_t candidates_accepted = 0; ///< pushed onto the frontier
  std::uint64_t beam_evictions = 0;      ///< trimmed by the beam
  std::uint64_t pool_rejections = 0;     ///< pool members with no witness
  std::uint64_t pumps_found = 0;         ///< fixed-point pump tests that hit
  std::uint64_t re_failures = 0;         ///< RE caps exceeded (dead nodes)
  std::uint64_t nodes_spent = 0;         ///< engine nodes, deterministic sum
  std::uint64_t cache_hits = 0;          ///< RE cache hits
  std::uint64_t cache_misses = 0;        ///< RE cache misses
  std::uint64_t certs_emitted = 0;       ///< certificates packaged
  std::uint64_t checkpoints_written = 0;
  bool resumed = false;                  ///< search started from a checkpoint
  std::string to_string() const;         ///< one line, deterministic
};

enum class DiscoverStatus {
  kFound,      ///< >= 1 chain found (definitive — never downgraded)
  kNone,       ///< search space exhausted with no find (definitive)
  kExhausted,  ///< a budget tripped first; resume or retry with more
  kCorrupt,    ///< the checkpoint file failed validation; nothing ran
};
const char* to_string(DiscoverStatus s);

/// One verified find. `chain` always has target_length + 1 elements
/// (pumpable chains are padded by repeating the tip); `certificate` is the
/// re-verified sequence certificate for exactly that chain.
struct Discovery {
  std::vector<Problem> chain;
  std::vector<std::uint64_t> fingerprints;  ///< canonical, per element
  bool pumped = false;
  cert::Certificate certificate;
};

struct DiscoverResult {
  DiscoverStatus status = DiscoverStatus::kNone;
  std::vector<Discovery> found;
  DiscoverStats stats;
  /// Line-oriented, deterministic trace of the whole search (roots,
  /// expansions, candidate verdicts, finds). Byte-identical across thread
  /// counts; the metamorphic tests diff it directly.
  std::string log;
};

/// Runs the search. `family` is the ordered candidate pool; every
/// non-trivial member seeds the frontier as a root. When
/// options.checkpoint_path names an existing file, the search resumes from
/// it (a file that fails validation returns kCorrupt without searching).
DiscoverResult run_discovery(const std::vector<Problem>& family,
                             const DiscoverOptions& options = {});

}  // namespace slocal::discover
