#include "src/net/batcher.hpp"

#include <algorithm>
#include <utility>

namespace slocal::net {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

SweepBatcher::SweepBatcher(serve::Server& server,
                           const SweepBatcherOptions& options)
    : server_(server), options_(options) {
  options_.max_group = std::max<std::size_t>(2, options_.max_group);
  worker_ = std::thread([this] { worker_loop(); });
}

SweepBatcher::~SweepBatcher() {
  // Detach first: set_sweep_interceptor synchronizes with an in-progress
  // delivery, so after it returns no new enqueue can start.
  server_.set_sweep_interceptor(nullptr);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  flush();  // nothing pending survives: drain() depends on it
}

void SweepBatcher::attach() {
  server_.set_sweep_interceptor(
      [this](serve::Server::AdmittedSweep&& admitted) {
        enqueue(std::move(admitted));
      });
}

void SweepBatcher::enqueue(serve::Server::AdmittedSweep&& admitted) {
  if (admitted.group_key.empty()) {
    // Ungroupable (will fail validation in the per-request path anyway).
    server_.submit_admitted_sweep(std::move(admitted));
    return;
  }
  std::vector<serve::Server::AdmittedSweep> full;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    PendingGroup& group = pending_[admitted.group_key];
    if (group.members.empty()) group.first_at = Clock::now();
    group.members.push_back(std::move(admitted));
    if (group.members.size() >= options_.max_group) {
      full = std::move(group.members);
      pending_.erase(full.front().group_key);
    }
  }
  if (!full.empty()) {
    server_.submit_sweep_group(std::move(full));
    return;
  }
  cv_.notify_all();
}

std::vector<std::vector<serve::Server::AdmittedSweep>> SweepBatcher::take_due(
    bool everything) {
  std::vector<std::vector<serve::Server::AdmittedSweep>> due;
  const auto now = Clock::now();
  const auto window = std::chrono::milliseconds(options_.window_ms);
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (everything || now - it->second.first_at >= window) {
      due.push_back(std::move(it->second.members));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  return due;
}

void SweepBatcher::flush() {
  std::vector<std::vector<serve::Server::AdmittedSweep>> due;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    due = take_due(/*everything=*/true);
  }
  for (auto& group : due) server_.submit_sweep_group(std::move(group));
}

void SweepBatcher::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (pending_.empty()) {
      cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      continue;
    }
    // Sleep until the oldest group's window expires (or a new group and
    // its earlier deadline shows up).
    auto oldest = Clock::time_point::max();
    for (const auto& [key, group] : pending_) {
      oldest = std::min(oldest, group.first_at);
    }
    cv_.wait_until(lock, oldest + std::chrono::milliseconds(options_.window_ms),
                   [this] { return stop_; });
    if (stop_) break;
    auto due = take_due(/*everything=*/false);
    lock.unlock();
    for (auto& group : due) server_.submit_sweep_group(std::move(group));
    lock.lock();
  }
}

}  // namespace slocal::net
