// The net layer's poll(2) plumbing: a small single-threaded event loop, an
// incremental line framer, and EINTR-safe write helpers.
//
// EventLoop multiplexes any number of fds through one poll(2) call per
// iteration. Callbacks may watch/unwatch fds (including their own) during
// dispatch — removal is honored immediately, never a dangling callback. A
// self-pipe makes wakeup() safe from other threads AND from signal handlers
// (one write(2), nothing else), which is how worker threads flush responses
// into a sleeping loop and how SIGINT/SIGTERM interrupt it.
//
// LineFramer turns an arbitrary chunking of bytes (partial reads, 1-byte
// dribbles, many lines per read) back into protocol lines. It accepts LF
// and CRLF, and it bounds memory against hostile senders: once a line
// exceeds the cap without a newline, only the first cap+1 bytes are kept
// (enough for serve::protocol to recover the request id and answer
// `invalid`) and the rest is discarded until the newline.
#pragma once

#include <poll.h>

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/serve/protocol.hpp"

namespace slocal::net {

/// Writes the whole buffer to a (blocking) fd, retrying on EINTR and short
/// writes. Returns false on any other error (e.g. EPIPE with SIGPIPE
/// ignored). This is the sink helper for stdout transports; the socket
/// transport uses non-blocking writes inside the loop instead.
bool write_fully(int fd, const char* data, std::size_t size);

/// Marks an fd non-blocking (and close-on-exec). Returns false on error.
bool set_nonblocking(int fd);

class EventLoop {
 public:
  /// Called with the revents that poll(2) reported for the fd.
  using Callback = std::function<void(short revents)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// false when the self-pipe could not be created (the loop is unusable).
  bool valid() const { return wake_read_ >= 0; }

  /// Registers (or re-registers) an fd. The loop does not own the fd.
  void watch(int fd, short events, Callback callback);
  /// Changes the interest set of an already-watched fd.
  void set_events(int fd, short events);
  /// Removes an fd; safe to call from inside any callback.
  void unwatch(int fd);
  bool watching(int fd) const { return watches_.count(fd) != 0; }

  /// One poll(2) iteration: blocks up to timeout_ms (-1 = forever, but a
  /// wakeup() still interrupts), then dispatches callbacks. Returns false
  /// only on a fatal poll error (never for EINTR or timeout).
  bool run_once(int timeout_ms);

  /// Interrupts the current (or next) run_once. Async-signal-safe: one
  /// write(2) on the self-pipe.
  void wakeup();

 private:
  struct Watch {
    short events = 0;
    Callback callback;
  };

  int wake_read_ = -1;
  int wake_write_ = -1;
  std::map<int, Watch> watches_;
};

class LineFramer {
 public:
  explicit LineFramer(std::size_t max_line = serve::kMaxRequestLine)
      : max_line_(max_line) {}

  /// Appends a chunk of raw bytes (any split is fine).
  void feed(const char* data, std::size_t size);

  /// Pops the next completed line, with the trailing LF (and a CR before
  /// it) stripped. An oversized line comes out truncated to max_line + 1
  /// bytes — still over the protocol cap, so parse_request_line flags it
  /// and recovers the id from the kept prefix. nullopt = no complete line
  /// buffered yet.
  std::optional<std::string> next();

  /// Lines delivered so far that exceeded the cap (observability only).
  std::uint64_t oversized_lines() const { return oversized_lines_; }
  /// Bytes currently buffered for an incomplete line.
  std::size_t pending_bytes() const { return pending_.size(); }

 private:
  std::size_t max_line_;
  std::string pending_;
  bool discarding_ = false;  // inside an oversized line, dropping until LF
  std::deque<std::string> ready_;
  std::uint64_t oversized_lines_ = 0;
};

}  // namespace slocal::net
