// Blocking client for the slocal_serve socket transport.
//
// One Client is one TCP connection speaking the line protocol of
// src/serve/protocol.hpp. All I/O is EINTR-safe and runs on a non-blocking
// socket guarded by poll(2), so connect, send, and read all honor their
// timeouts instead of hanging forever on a dead peer. request() correlates
// by request id: it sends one line and waits for the `resp <id> ...` that
// answers it specifically, so a client can share a connection with earlier
// in-flight requests without stealing their responses.
//
// Used by tests, the bench socket demo, and the `slocal_tool client` verb.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/net/event_loop.hpp"

namespace slocal::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t connect_timeout_ms = 5'000;
  /// Per read_line()/send_line() call; request() applies it to the whole
  /// round trip.
  std::uint64_t io_timeout_ms = 10'000;
};

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects within connect_timeout_ms. false with *error set on failure.
  bool connect(const ClientOptions& options, std::string* error);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends one line ('\n' appended). EINTR-safe, honors io_timeout_ms.
  bool send_line(const std::string& line, std::string* error);

  /// Next line from the server (LF or CRLF stripped). nullopt with *error
  /// set on timeout, disconnect, or error.
  std::optional<std::string> read_line(std::string* error);

  /// Sends a request line and returns the line that answers it: for
  /// "req <id> ..." lines the matching "resp <id> ...", for control lines
  /// (ping/stats/checkpoint) the next non-resp line. Responses to other
  /// ids that arrive in between are discarded — use one outstanding
  /// request per Client when every response matters.
  std::optional<std::string> request(const std::string& line, std::string* error);

 private:
  bool wait_ready(short events, std::uint64_t timeout_ms, std::string* error);

  int fd_ = -1;
  std::uint64_t io_timeout_ms_ = 10'000;
  LineFramer framer_{1 << 20};  // responses are ours; no 4096 hostility cap
};

}  // namespace slocal::net
