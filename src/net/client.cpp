#include "src/net/client.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

namespace slocal::net {

namespace {

using Clock = std::chrono::steady_clock;

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

std::uint64_t ms_left(Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now())
          .count();
  return left > 0 ? static_cast<std::uint64_t>(left) : 0;
}

/// The id a response must carry to answer `line` ("" for control lines).
std::string request_id_of(const std::string& line) {
  if (line.rfind("req ", 0) != 0) return {};
  const std::size_t id_start = 4;
  const std::size_t id_end = line.find(' ', id_start);
  return line.substr(id_start, id_end == std::string::npos ? std::string::npos
                                                           : id_end - id_start);
}

}  // namespace

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      io_timeout_ms_(other.io_timeout_ms_),
      framer_(std::move(other.framer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    io_timeout_ms_ = other.io_timeout_ms_;
    framer_ = std::move(other.framer_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::wait_ready(short events, std::uint64_t timeout_ms, std::string* error) {
  pollfd pfd{fd_, events, 0};
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    const std::uint64_t left = ms_left(deadline);
    const int ready = ::poll(&pfd, 1, static_cast<int>(left));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return fail(error, "poll: " + std::string(strerror(errno)));
    }
    if (ready == 0) return fail(error, "timed out");
    return true;
  }
}

bool Client::connect(const ClientOptions& options, std::string* error) {
  close();
  io_timeout_ms_ = options.io_timeout_ms;
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return fail(error, "socket: " + std::string(strerror(errno)));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    close();
    return fail(error, "bad host '" + options.host + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS && errno != EINTR) {
      const std::string message = strerror(errno);
      close();
      return fail(error, "connect: " + message);
    }
    if (!wait_ready(POLLOUT, options.connect_timeout_ms, error)) {
      close();
      return false;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
        so_error != 0) {
      close();
      return fail(error, "connect: " +
                             std::string(strerror(so_error != 0 ? so_error : errno)));
    }
  }
  return true;
}

bool Client::send_line(const std::string& line, std::string* error) {
  if (fd_ < 0) return fail(error, "not connected");
  const std::string out = line + "\n";
  std::size_t written = 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(io_timeout_ms_);
  while (written < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + written, out.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (ms_left(deadline) == 0) return fail(error, "send timed out");
        if (!wait_ready(POLLOUT, ms_left(deadline), error)) return false;
        continue;
      }
      return fail(error, "send: " + std::string(strerror(errno)));
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> Client::read_line(std::string* error) {
  if (fd_ < 0) {
    fail(error, "not connected");
    return std::nullopt;
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(io_timeout_ms_);
  while (true) {
    if (const auto line = framer_.next()) return line;
    const std::uint64_t left = ms_left(deadline);
    if (left == 0) {
      fail(error, "read timed out");
      return std::nullopt;
    }
    if (!wait_ready(POLLIN, left, error)) return std::nullopt;
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      framer_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      fail(error, "connection closed by server");
      return std::nullopt;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    fail(error, "recv: " + std::string(strerror(errno)));
    return std::nullopt;
  }
}

std::optional<std::string> Client::request(const std::string& line,
                                           std::string* error) {
  if (!send_line(line, error)) return std::nullopt;
  const std::string want_id = request_id_of(line);
  const std::string want_prefix = "resp " + want_id + " ";
  while (true) {
    const auto response = read_line(error);
    if (!response) return std::nullopt;
    if (want_id.empty()) {
      // Control line: the next non-response line answers it (responses to
      // earlier ids may still be streaming in).
      if (response->rfind("resp ", 0) != 0) return response;
      continue;
    }
    if (response->rfind(want_prefix, 0) == 0) return response;
  }
}

}  // namespace slocal::net
