#include "src/net/event_loop.hpp"

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include <utility>

namespace slocal::net {

bool write_fully(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  return true;
}

EventLoop::EventLoop() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    wake_read_ = fds[0];
    wake_write_ = fds[1];
    set_nonblocking(wake_read_);
    set_nonblocking(wake_write_);
  }
}

EventLoop::~EventLoop() {
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

void EventLoop::watch(int fd, short events, Callback callback) {
  watches_[fd] = Watch{events, std::move(callback)};
}

void EventLoop::set_events(int fd, short events) {
  const auto it = watches_.find(fd);
  if (it != watches_.end()) it->second.events = events;
}

void EventLoop::unwatch(int fd) { watches_.erase(fd); }

bool EventLoop::run_once(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(watches_.size() + 1);
  fds.push_back(pollfd{wake_read_, POLLIN, 0});
  for (const auto& [fd, watch] : watches_) {
    fds.push_back(pollfd{fd, watch.events, 0});
  }

  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) return errno == EINTR;
  if (ready == 0) return true;

  if ((fds[0].revents & POLLIN) != 0) {
    // Drain every queued wakeup byte; the caller re-checks its state flags.
    char buf[64];
    while (::read(wake_read_, buf, sizeof(buf)) > 0) {
    }
  }

  // Dispatch from a snapshot: callbacks may watch/unwatch freely, and an
  // unwatched fd must not be dispatched even if poll flagged it.
  for (std::size_t i = 1; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    const auto it = watches_.find(fds[i].fd);
    if (it == watches_.end() || !it->second.callback) continue;
    // Copy: the callback may unwatch (and thereby destroy) its own entry.
    const Callback callback = it->second.callback;
    callback(fds[i].revents);
  }
  return true;
}

void EventLoop::wakeup() {
  if (wake_write_ < 0) return;
  const char byte = 1;
  // Async-signal-safe: a single write; EAGAIN means a wakeup is already
  // pending, which is just as good.
  while (::write(wake_write_, &byte, 1) < 0 && errno == EINTR) {
  }
}

void LineFramer::feed(const char* data, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    const char c = data[i];
    if (c == '\n') {
      if (!discarding_) {
        if (!pending_.empty() && pending_.back() == '\r') pending_.pop_back();
      }
      if (pending_.size() > max_line_) ++oversized_lines_;
      ready_.push_back(std::move(pending_));
      pending_.clear();
      discarding_ = false;
      continue;
    }
    if (discarding_) continue;
    if (pending_.size() > max_line_) {
      // Over the cap with no newline yet: keep the prefix (the id lives
      // there), drop the rest of this line. The kept size is max_line + 1
      // so the protocol still classifies the line as oversized.
      discarding_ = true;
      continue;
    }
    pending_.push_back(c);
  }
}

std::optional<std::string> LineFramer::next() {
  if (ready_.empty()) return std::nullopt;
  std::string line = std::move(ready_.front());
  ready_.pop_front();
  return line;
}

}  // namespace slocal::net
