// The batching sweep dispatcher: the piece that turns many concurrent
// clients into fewer solver runs.
//
// Installed as serve::Server's sweep interceptor, the batcher holds each
// admitted sweep request for a short window and groups the queue by the
// server-computed group key (canonical problem fingerprint + lift targets
// + family kind). A group whose window expires — or that reaches max_group
// first — is handed back to the server as ONE unit: the union of the
// members' support ranges is answered through one IncrementalLabelingSweep
// encoding (one assumption-guarded solve per support size) and each
// member's verdict list is sliced out of the shared result. Singleton
// groups and requests that failed key construction fall back to the
// ordinary per-request dispatch, so the batcher can only ever remove
// solver work, never add a failure mode. Admission, budgets, deadlines,
// and the watchdog all happened BEFORE interception and keep acting on
// every member individually — a request stuck in a window past its
// deadline is cancelled by the watchdog exactly like a queued one, and is
// shed as retryable when its group executes.
//
// Lifetime: construct after the Server, destroy before it. The destructor
// detaches the interceptor (synchronizing with in-progress deliveries),
// flushes everything still pending, and joins — no request is ever lost,
// so Server::drain() always terminates.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/server.hpp"

namespace slocal::net {

struct SweepBatcherOptions {
  /// How long the first request of a group waits for peers before the
  /// group is dispatched.
  std::uint64_t window_ms = 10;
  /// A group reaching this size is dispatched immediately.
  std::size_t max_group = 64;
};

class SweepBatcher {
 public:
  SweepBatcher(serve::Server& server, const SweepBatcherOptions& options);
  ~SweepBatcher();

  SweepBatcher(const SweepBatcher&) = delete;
  SweepBatcher& operator=(const SweepBatcher&) = delete;

  /// Installs this batcher as the server's sweep interceptor.
  void attach();

  /// Takes custody of one admitted sweep (thread-safe; called by the
  /// server's interceptor hook). Ungroupable requests dispatch instantly.
  void enqueue(serve::Server::AdmittedSweep&& admitted);

  /// Dispatches everything pending right now (tests and shutdown paths;
  /// normal operation relies on the window timer).
  void flush();

 private:
  struct PendingGroup {
    std::vector<serve::Server::AdmittedSweep> members;
    std::chrono::steady_clock::time_point first_at;
  };

  void worker_loop();
  /// Moves expired (or all, when `everything`) groups out of pending_.
  /// Lock must be held; dispatch happens outside it.
  std::vector<std::vector<serve::Server::AdmittedSweep>> take_due(bool everything);

  serve::Server& server_;
  SweepBatcherOptions options_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, PendingGroup> pending_;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace slocal::net
