// The socket transport for the lower-bound service: one poll-based loop
// (src/net/event_loop.hpp) accepting many concurrent localhost TCP
// connections and driving the transport-agnostic serve::Server through its
// per-line sink API.
//
// Responsibilities, and only these — request semantics stay in src/serve/:
//
//  * accept loop on 127.0.0.1:<port> (port 0 = ephemeral, report the bound
//    one), with a connection cap: accepts over the cap are shed with the
//    protocol's `retryable` class (reason=connections + retry_after_ms
//    hint) and closed, mirroring admission control one layer down;
//  * per-connection read/write buffering: reads are framed by LineFramer
//    (partial reads, CRLF/LF, oversized lines with id recovery all
//    handled), writes are queued per connection and flushed when the
//    socket accepts them, so one slow client never blocks the loop;
//  * every parsed line goes to Server::handle_line with a per-connection
//    sink, so concurrent workers route each response back to exactly the
//    connection that asked — ids never cross connections;
//  * idle-connection timeouts, and hard resilience to clients vanishing
//    mid-response: writes use MSG_NOSIGNAL and treat EPIPE/ECONNRESET as
//    an ordinary close, responses to dead connections are dropped;
//  * the drop-connection fault (ServeFaultPlan, by 1-based accept ordinal,
//    counted through the server's shared FaultInjector) closes a freshly
//    accepted socket before a byte is served — the soak asserts dropped
//    clients get no response and nobody else is affected.
//
// Shutdown: stop() (async-signal-safe) or a `shutdown` request line ends
// the loop; run() then drains the server so every admitted request's
// response still reaches its connection, flushes the outboxes, and closes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/net/event_loop.hpp"
#include "src/serve/server.hpp"

namespace slocal::net {

struct TcpServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Max simultaneously open connections; accepts beyond it are shed with
  /// a retryable response.
  std::size_t max_connections = 64;
  /// Connections with no traffic for this long are closed (0 = never).
  std::uint64_t idle_timeout_ms = 30'000;
  /// Hint attached to connection-shed retryable responses.
  double retry_after_ms = 50.0;
  /// How long run() keeps flushing queued responses after drain (the
  /// bound on a slow client delaying shutdown).
  std::uint64_t shutdown_flush_ms = 2'000;
};

/// Monotonic transport counters (connection-level; request-level counters
/// live in ServeCounters).
struct TcpServerCounters {
  std::uint64_t accepted = 0;        // connections accepted (incl. shed/dropped)
  std::uint64_t shed = 0;            // closed over the connection cap
  std::uint64_t dropped = 0;         // drop-connection fault closes
  std::uint64_t idle_closed = 0;
  std::uint64_t eof_closed = 0;      // client closed first
  std::uint64_t error_closed = 0;    // read/write error (EPIPE, reset, ...)
  std::uint64_t lines_in = 0;
  std::uint64_t responses_out = 0;   // response lines fully written
  std::uint64_t oversized_lines = 0;
};

class TcpServer {
 public:
  TcpServer(serve::Server& server, const TcpServerOptions& options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds and listens on 127.0.0.1. false with *error set on failure.
  bool start(std::string* error);
  /// The actually bound port (after start; resolves port 0).
  std::uint16_t port() const { return port_; }

  /// Serves until stop() or a shutdown request line, then drains the
  /// server, flushes queued responses, and closes every connection.
  /// Call from one thread; start() must have succeeded.
  void run();

  /// Ends run() from another thread or a signal handler. Async-signal-safe:
  /// one atomic store plus one write(2) on the loop's self-pipe.
  void stop();

  TcpServerCounters counters() const;
  std::size_t active_connections() const;

 private:
  /// Worker-visible half of a connection: the response outbox. Workers
  /// finishing after the socket closed (or after the whole TcpServer is
  /// gone) find alive == false and drop the response; holding the mutex
  /// across the wakeup makes that check race-free against teardown.
  struct ConnState {
    std::mutex mutex;
    std::deque<std::string> outbox;  // response lines, '\n' included
    std::size_t front_offset = 0;    // partially written head
    bool alive = true;
  };

  struct Conn {
    int fd = -1;
    std::shared_ptr<ConnState> state;
    LineFramer framer;
    std::chrono::steady_clock::time_point last_activity;
  };

  void accept_ready();
  void conn_ready(int fd, short revents);
  bool flush_outbox(Conn& conn);  // false = connection must close
  void close_conn(int fd);
  void update_interest(Conn& conn);
  void scan_idle();
  void flush_all_before_close();
  serve::Server::Sink make_sink(std::shared_ptr<ConnState> state);

  serve::Server& server_;
  TcpServerOptions options_;
  EventLoop loop_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopped_{false};

  mutable std::mutex conns_mutex_;  // guards conns_ size for counters only
  std::map<int, Conn> conns_;

  mutable std::mutex counter_mutex_;
  TcpServerCounters counters_;
};

}  // namespace slocal::net
