#include "src/net/tcp_server.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <vector>

namespace slocal::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Poll cadence while serving: bounds response-flush latency for outbox
/// lines queued by workers between wakeups, and the idle-scan granularity.
constexpr int kLoopTickMs = 50;

}  // namespace

TcpServer::TcpServer(serve::Server& server, const TcpServerOptions& options)
    : server_(server), options_(options) {
  options_.max_connections = std::max<std::size_t>(1, options_.max_connections);
}

TcpServer::~TcpServer() {
  // Idempotent teardown for the start()-but-never-run() and post-run()
  // paths alike: every ConnState is marked dead under its mutex before the
  // loop (and its self-pipe) goes away, so a late worker sink can never
  // touch a freed loop.
  std::vector<int> fds;
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (const int fd : fds) close_conn(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool TcpServer::start(std::string* error) {
  if (!loop_.valid()) {
    if (error != nullptr) *error = "event loop self-pipe creation failed";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) *error = "bind: " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 128) < 0) {
    if (error != nullptr) *error = "listen: " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound = {};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  loop_.watch(listen_fd_, POLLIN, [this](short) { accept_ready(); });
  return true;
}

void TcpServer::stop() {
  stopped_.store(true, std::memory_order_release);
  loop_.wakeup();
}

serve::Server::Sink TcpServer::make_sink(std::shared_ptr<ConnState> state) {
  return [this, state = std::move(state)](const std::string& line) {
    const std::lock_guard<std::mutex> lock(state->mutex);
    // alive == true under the lock implies teardown has not run for this
    // connection, which implies *this (and its loop) are still alive —
    // close_conn flips the flag under the same mutex before either dies.
    if (!state->alive) return;
    state->outbox.push_back(line + "\n");
    loop_.wakeup();
  };
}

void TcpServer::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or transient accept error: next poll retries
    }
    {
      const std::lock_guard<std::mutex> lock(counter_mutex_);
      ++counters_.accepted;
    }
    // Deterministic fault: drop this accept before a single byte moves.
    if (server_.injector().next_accept_dropped()) {
      ::close(fd);
      const std::lock_guard<std::mutex> lock(counter_mutex_);
      ++counters_.dropped;
      continue;
    }
    // Connection cap: shed with the protocol's retryable class, exactly
    // like admission control sheds requests one layer down.
    if (conns_.size() >= options_.max_connections) {
      const std::string line =
          serve::format_response(serve::make_retryable(
              "", "connections", options_.retry_after_ms, {})) +
          "\n";
      // Best effort on a fresh socket (the buffer is empty, this fits).
      ssize_t ignored = ::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
      (void)ignored;
      ::close(fd);
      const std::lock_guard<std::mutex> lock(counter_mutex_);
      ++counters_.shed;
      continue;
    }

    Conn conn;
    conn.fd = fd;
    conn.state = std::make_shared<ConnState>();
    conn.last_activity = Clock::now();
    {
      const std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.emplace(fd, std::move(conn));
    }
    loop_.watch(fd, POLLIN, [this, fd](short revents) { conn_ready(fd, revents); });
  }
}

void TcpServer::conn_ready(int fd, short revents) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;

  bool close = false;
  bool eof = false;
  if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.framer.feed(buf, static_cast<std::size_t>(n));
        conn.last_activity = Clock::now();
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close = true;  // reset or another hard error
      break;
    }
  }

  // Dispatch every completed line with this connection's sink; the server
  // answers inline (control/invalid/admission) or from a worker later.
  const serve::Server::Sink sink = make_sink(conn.state);
  while (const auto line = conn.framer.next()) {
    {
      const std::lock_guard<std::mutex> lock(counter_mutex_);
      ++counters_.lines_in;
      if (line->size() > serve::kMaxRequestLine) ++counters_.oversized_lines;
    }
    if (!server_.handle_line(*line, sink)) {
      stopped_.store(true, std::memory_order_release);
    }
  }

  if (!flush_outbox(conn)) close = true;

  if (eof || close) {
    const std::lock_guard<std::mutex> lock(counter_mutex_);
    if (eof) {
      ++counters_.eof_closed;
    } else {
      ++counters_.error_closed;
    }
  }
  if (eof || close) {
    close_conn(fd);
    return;
  }
  update_interest(conn);
}

bool TcpServer::flush_outbox(Conn& conn) {
  const std::lock_guard<std::mutex> lock(conn.state->mutex);
  auto& outbox = conn.state->outbox;
  while (!outbox.empty()) {
    const std::string& line = outbox.front();
    const char* data = line.data() + conn.state->front_offset;
    const std::size_t left = line.size() - conn.state->front_offset;
    const ssize_t n = ::send(conn.fd, data, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // wait for POLLOUT
      return false;  // EPIPE / ECONNRESET / ...: client is gone
    }
    conn.state->front_offset += static_cast<std::size_t>(n);
    conn.last_activity = Clock::now();
    if (conn.state->front_offset == line.size()) {
      outbox.pop_front();
      conn.state->front_offset = 0;
      const std::lock_guard<std::mutex> counter_lock(counter_mutex_);
      ++counters_.responses_out;
    }
  }
  return true;
}

void TcpServer::update_interest(Conn& conn) {
  short events = POLLIN;
  {
    const std::lock_guard<std::mutex> lock(conn.state->mutex);
    if (!conn.state->outbox.empty()) events |= POLLOUT;
  }
  loop_.set_events(conn.fd, events);
}

void TcpServer::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  {
    // Mark dead BEFORE the fd goes away: worker sinks observing alive ==
    // false drop their response; ones already past the check have queued
    // into an outbox we simply discard.
    const std::lock_guard<std::mutex> lock(it->second.state->mutex);
    it->second.state->alive = false;
    it->second.state->outbox.clear();
  }
  loop_.unwatch(fd);
  ::close(fd);
  {
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.erase(fd);
  }
}

void TcpServer::scan_idle() {
  if (options_.idle_timeout_ms == 0) return;
  const auto now = Clock::now();
  const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<int> idle;
  for (const auto& [fd, conn] : conns_) {
    if (now - conn.last_activity > limit) idle.push_back(fd);
  }
  for (const int fd : idle) {
    {
      const std::lock_guard<std::mutex> lock(counter_mutex_);
      ++counters_.idle_closed;
    }
    close_conn(fd);
  }
}

void TcpServer::run() {
  while (!stopped_.load(std::memory_order_acquire) &&
         !server_.shutdown_requested()) {
    if (!loop_.run_once(kLoopTickMs)) break;
    // Flush outboxes the workers filled since the last pass and refresh
    // each connection's interest set; drop connections that died mid-write.
    std::vector<int> dead;
    for (auto& [fd, conn] : conns_) {
      if (!flush_outbox(conn)) {
        dead.push_back(fd);
        continue;
      }
      update_interest(conn);
    }
    for (const int fd : dead) {
      {
        const std::lock_guard<std::mutex> lock(counter_mutex_);
        ++counters_.error_closed;
      }
      close_conn(fd);
    }
    scan_idle();
  }

  // Graceful end: stop accepting, let every admitted request finish (their
  // responses land in the outboxes), flush what the clients will take,
  // close everything.
  if (listen_fd_ >= 0) {
    loop_.unwatch(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  server_.request_shutdown();
  server_.drain();
  flush_all_before_close();
}

void TcpServer::flush_all_before_close() {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.shutdown_flush_ms);
  while (Clock::now() < deadline) {
    bool pending = false;
    std::vector<int> dead;
    for (auto& [fd, conn] : conns_) {
      if (!flush_outbox(conn)) {
        dead.push_back(fd);
        continue;
      }
      const std::lock_guard<std::mutex> lock(conn.state->mutex);
      if (!conn.state->outbox.empty()) pending = true;
    }
    for (const int fd : dead) close_conn(fd);
    if (!pending) break;
    // Wait for writability on whichever socket is backed up.
    std::vector<pollfd> fds;
    for (const auto& [fd, conn] : conns_) fds.push_back(pollfd{fd, POLLOUT, 0});
    if (!fds.empty()) ::poll(fds.data(), fds.size(), 100);
  }
  std::vector<int> fds;
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (const int fd : fds) close_conn(fd);
}

TcpServerCounters TcpServer::counters() const {
  const std::lock_guard<std::mutex> lock(counter_mutex_);
  return counters_;
}

std::size_t TcpServer::active_connections() const {
  const std::lock_guard<std::mutex> lock(conns_mutex_);
  return conns_.size();
}

}  // namespace slocal::net
