#include "src/bounds/rulingset_census.hpp"

#include <cassert>

#include "src/problems/rulingset_family.hpp"

namespace slocal {

RulingsetTypeCensus rulingset_type_census(
    const Graph& g, const LiftedProblem& lift, const Problem& base,
    std::size_t beta, std::size_t delta_prime, const std::vector<bool>& in_s,
    std::span<const std::size_t> lifted_half_labels) {
  assert(lifted_half_labels.size() == 2 * g.edge_count());
  RulingsetTypeCensus out;

  const auto p_beta = pointer_label(base, beta);
  const auto u_beta = up_label(base, beta);
  assert(p_beta && u_beta);

  const auto set_of = [&](EdgeId e, NodeId v) {
    const std::size_t half =
        2 * static_cast<std::size_t>(e) + (g.edge(e).u == v ? 0 : 1);
    return lift.label_sets()[lifted_half_labels[half]];
  };

  const std::size_t delta = g.max_degree();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (!in_s[v]) continue;
    ++out.s_size;
    bool all_u = true;
    bool any_pu = false;
    std::size_t p_count = 0;
    for (const EdgeId e : g.incident_edges(v)) {
      const SmallBitset s = set_of(e, v);
      const bool has_u = s.test(*u_beta);
      const bool has_p = s.test(*p_beta);
      all_u = all_u && has_u;
      any_pu = any_pu || has_u || has_p;
      if (has_p) ++p_count;
    }
    if (!any_pu) {
      ++out.plain;
    } else if (!all_u) {
      ++out.type3;
    } else if (delta >= delta_prime && p_count > delta - delta_prime) {
      ++out.type1;
    } else {
      ++out.type2;
    }
  }

  // P_β pairing inside S: the edge constraint of Π_Δ'(k,β) forbids
  // {P_β, P_β}, so for S-internal edges at most one side's set has P_β.
  out.p_beta_pairing_ok = true;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    if (!in_s[edge.u] || !in_s[edge.v]) continue;
    const bool pu = set_of(e, edge.u).test(*p_beta);
    const bool pv = set_of(e, edge.v).test(*p_beta);
    if (pu) ++out.p_beta_half_edges;
    if (pv) ++out.p_beta_half_edges;
    if (pu && pv) out.p_beta_pairing_ok = false;
  }

  out.type1_bound_ok = 4 * out.type1 <= 3 * out.s_size;
  return out;
}

}  // namespace slocal
