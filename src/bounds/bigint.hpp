// Minimal arbitrary-precision unsigned integer for the instance-counting
// arguments of Appendix C.
//
// The derandomization lifting theorem bounds the number of Supported LOCAL
// instances by 2^{C(n,2)} · n! · 2^{n²} and the paper claims this is at
// most 2^{3n²}; verifying the claim exactly (experiment E7) needs integers
// with thousands of bits, so we count for real instead of with doubles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace slocal {

class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(std::uint64_t value);

  static BigUint pow2(std::size_t exponent);
  static BigUint factorial(std::uint64_t n);

  BigUint operator+(const BigUint& o) const;
  BigUint operator*(const BigUint& o) const;
  BigUint& operator*=(const BigUint& o);

  bool operator==(const BigUint& o) const { return limbs_ == o.limbs_; }
  bool operator<(const BigUint& o) const;
  bool operator<=(const BigUint& o) const { return *this < o || *this == o; }

  bool is_zero() const { return limbs_.empty(); }

  /// Number of bits (0 for zero); e.g. bit_length(2^k) = k+1.
  std::size_t bit_length() const;

  /// Decimal rendering (quadratic; fine for the sizes used here).
  std::string to_string() const;

 private:
  void normalize();
  std::vector<std::uint32_t> limbs_;  // little-endian base 2^32
};

}  // namespace slocal
