// The counting certificates of Section 4.2 (Lemmas 4.7–4.9).
//
// Section 4.2 proves that lift_{Δ,Δ}(Π_Δ'(x', y)) admits no solution on the
// double-cover support graphs by counting edges whose label-sets contain M
// or P: white nodes force at least n((Δ-Δ')/2 - y) P-edges (Lemma 4.8)
// while black nodes allow at most n(Δ'-1) (Lemma 4.9); at Δ = 5Δ' the two
// bounds conflict. This module implements the lemmas both as
//   * pure-parameter contradiction checks (does Δ, Δ', y certify
//     unsolvability?), and
//   * census checkers on explicit label-set assignments (count and verify
//     the lemmas' inequalities on a candidate solution).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/formalism/label.hpp"
#include "src/graph/bipartite.hpp"
#include "src/util/bitset.hpp"

namespace slocal {

struct MatchingContradiction {
  double p_lower = 0;      // Lemma 4.8: P-edges >= n((Δ-Δ')/2 - y)
  double p_upper = 0;      // Lemma 4.9: P-edges <= n(Δ'-1)
  bool contradicts = false;  // lower > upper  =>  lift unsolvable on G
};

/// Pure-parameter form: per Section 4.2 the counting bounds are
/// (per n, where 2n = node count): lower = (Δ-Δ')/2 - y, upper = Δ' - 1.
MatchingContradiction matching_counting_contradiction(std::size_t delta,
                                                      std::size_t delta_prime,
                                                      std::size_t y);

/// The smallest integer multiplier m with Δ = m·Δ' making the bounds
/// contradictory for all y <= y_max (Section 4.2 fixes m = 5).
std::size_t minimal_contradicting_multiplier(std::size_t delta_prime,
                                             std::size_t y_max);

struct LabelSetCensus {
  std::size_t edges_with_m = 0;  // label-sets containing M
  std::size_t edges_with_p = 0;  // label-sets containing P
  std::size_t half_n = 0;        // n where the graph has 2n nodes
  bool lemma_4_7_holds = false;  // edges_with_m <= n*y
  bool lemma_4_8_holds = false;  // edges_with_p >= n*((Δ-Δ')/2 - y)
  bool lemma_4_9_holds = false;  // edges_with_p <= n*(Δ'-1)
};

/// Census of a candidate lifted labeling: `edge_sets[e]` is the label-set
/// (bits over Π_Δ'(x',y)'s labels) on edge e of the (Δ,Δ)-biregular 2n-node
/// support graph g. `m_label` / `p_label` are the M / P label indices.
LabelSetCensus census_label_sets(const BipartiteGraph& g,
                                 std::span<const SmallBitset> edge_sets,
                                 Label m_label, Label p_label,
                                 std::size_t delta, std::size_t delta_prime,
                                 std::size_t y);

}  // namespace slocal
