#include "src/bounds/bigint.hpp"

#include <algorithm>
#include <cassert>

namespace slocal {

BigUint::BigUint(std::uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(value));
    if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
  }
}

void BigUint::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::pow2(std::size_t exponent) {
  BigUint out;
  out.limbs_.assign(exponent / 32 + 1, 0);
  out.limbs_.back() = std::uint32_t{1} << (exponent % 32);
  return out;
}

BigUint BigUint::factorial(std::uint64_t n) {
  BigUint out(1);
  for (std::uint64_t i = 2; i <= n; ++i) out *= BigUint(i);
  return out;
}

BigUint BigUint::operator+(const BigUint& o) const {
  BigUint out;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.assign(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.normalize();
  return out;
}

BigUint BigUint::operator*(const BigUint& o) const {
  if (is_zero() || o.is_zero()) return BigUint{};
  BigUint out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      const std::uint64_t cur = static_cast<std::uint64_t>(limbs_[i]) * o.limbs_[j] +
                                out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + o.limbs_.size();
    while (carry != 0) {
      const std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.normalize();
  return out;
}

BigUint& BigUint::operator*=(const BigUint& o) {
  *this = *this * o;
  return *this;
}

bool BigUint::operator<(const BigUint& o) const {
  if (limbs_.size() != o.limbs_.size()) return limbs_.size() < o.limbs_.size();
  for (std::size_t i = limbs_.size(); i > 0; --i) {
    if (limbs_[i - 1] != o.limbs_[i - 1]) return limbs_[i - 1] < o.limbs_[i - 1];
  }
  return false;
}

std::size_t BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

std::string BigUint::to_string() const {
  if (limbs_.empty()) return "0";
  std::vector<std::uint32_t> work = limbs_;
  std::string digits;
  while (!work.empty()) {
    // Divide by 10 in place.
    std::uint64_t remainder = 0;
    for (std::size_t i = work.size(); i > 0; --i) {
      const std::uint64_t cur = (remainder << 32) | work[i - 1];
      work[i - 1] = static_cast<std::uint32_t>(cur / 10);
      remainder = cur % 10;
    }
    digits.push_back(static_cast<char>('0' + remainder));
    while (!work.empty() && work.back() == 0) work.pop_back();
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

}  // namespace slocal
