#include "src/bounds/formulas.hpp"

#include <algorithm>
#include <cmath>

namespace slocal {

namespace {

double log_base(double base, double x) { return std::log(x) / std::log(base); }

}  // namespace

double theorem_3_4_deterministic(std::size_t k, double epsilon, double c,
                                 std::size_t delta, std::size_t r, double n) {
  const double base = static_cast<double>(delta) * static_cast<double>(r);
  const double girth_term = (epsilon * (log_base(base, n) - c) - 4.0) / 2.0;
  return std::min(2.0 * static_cast<double>(k), girth_term) - 1.0;
}

double theorem_3_4_randomized(std::size_t k, double epsilon, double c,
                              std::size_t delta, std::size_t r, double n) {
  const double n_det = std::sqrt(std::log2(n) / 3.0);
  return theorem_3_4_deterministic(k, epsilon, c, delta, r, std::max(n_det, 2.0));
}

MatchingBound matching_lower_bound(std::size_t delta_prime, std::size_t x,
                                   std::size_t y, std::size_t delta, double n,
                                   double epsilon) {
  MatchingBound out;
  const double progress = static_cast<double>(delta_prime - x) / static_cast<double>(y);
  out.k = progress >= 2.0 ? static_cast<std::size_t>(progress) - 2 : 0;
  const double ld = static_cast<double>(delta);
  out.det_rounds = std::max(0.0, std::min(progress, epsilon * log_base(ld, n)));
  out.rand_rounds =
      std::max(0.0, std::min(progress, epsilon * log_base(ld, std::log2(n))));
  out.upper_rounds = static_cast<double>(delta_prime) / static_cast<double>(y);
  return out;
}

ArbdefectiveBound arbdefective_lower_bound(std::size_t alpha, std::size_t c,
                                           std::size_t delta_prime,
                                           std::size_t delta, double n,
                                           double epsilon) {
  ArbdefectiveBound out;
  const double ld = static_cast<double>(delta);
  out.k_threshold = std::min(static_cast<double>(delta_prime),
                             epsilon * ld / std::log2(ld));
  out.applies = static_cast<double>((alpha + 1) * c) <= out.k_threshold;
  out.det_rounds = log_base(ld, n);
  out.rand_rounds = log_base(ld, std::max(2.0, std::log2(n)));
  return out;
}

RulingSetBound rulingset_lower_bound(std::size_t alpha, std::size_t c,
                                     std::size_t beta, std::size_t delta_prime,
                                     std::size_t delta, double n, double epsilon,
                                     double big_c) {
  RulingSetBound out;
  const double ld = static_cast<double>(delta);
  const double base = std::min(static_cast<double>(delta_prime),
                               epsilon * ld / std::log2(ld));
  out.delta_bar = base / std::pow(2.0, big_c * static_cast<double>(beta));
  out.applies = static_cast<double>((alpha + 1) * c) <= out.delta_bar &&
                beta >= 1 && beta < delta_prime;
  const double ratio = out.delta_bar / static_cast<double>((alpha + 1) * c);
  const double growth = std::pow(std::max(ratio, 1.0), 1.0 / static_cast<double>(beta));
  out.det_rounds = std::max(0.0, std::min(growth, log_base(ld, n)));
  out.rand_rounds =
      std::max(0.0, std::min(growth, log_base(ld, std::max(2.0, std::log2(n)))));
  out.upper_rounds =
      static_cast<double>(beta) *
      std::pow(ld / static_cast<double>((alpha + 1) * c), 1.0 / static_cast<double>(beta));
  return out;
}

MisChromaticInstance mis_chromatic_instance(double n) {
  MisChromaticInstance out;
  const double loglog = std::log2(std::max(2.0, std::log2(n)));
  out.delta_prime = std::log2(n) / loglog;
  out.delta = out.delta_prime * std::log2(std::max(2.0, out.delta_prime));
  out.lower_bound = std::log2(n) / loglog;
  out.chromatic_bound = out.delta / std::log2(std::max(2.0, out.delta));
  return out;
}

}  // namespace slocal
