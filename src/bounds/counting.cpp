#include "src/bounds/counting.hpp"

#include <cassert>

namespace slocal {

MatchingContradiction matching_counting_contradiction(std::size_t delta,
                                                      std::size_t delta_prime,
                                                      std::size_t y) {
  MatchingContradiction out;
  out.p_lower =
      (static_cast<double>(delta) - static_cast<double>(delta_prime)) / 2.0 -
      static_cast<double>(y);
  out.p_upper = static_cast<double>(delta_prime) - 1.0;
  out.contradicts = out.p_lower > out.p_upper;
  return out;
}

std::size_t minimal_contradicting_multiplier(std::size_t delta_prime,
                                             std::size_t y_max) {
  for (std::size_t m = 2; m <= 64; ++m) {
    bool all = true;
    for (std::size_t y = 1; y <= y_max && all; ++y) {
      all = matching_counting_contradiction(m * delta_prime, delta_prime, y)
                .contradicts;
    }
    if (all) return m;
  }
  return 0;  // none within range
}

LabelSetCensus census_label_sets(const BipartiteGraph& g,
                                 std::span<const SmallBitset> edge_sets,
                                 Label m_label, Label p_label,
                                 std::size_t delta, std::size_t delta_prime,
                                 std::size_t y) {
  assert(edge_sets.size() == g.edge_count());
  LabelSetCensus out;
  out.half_n = g.node_count() / 2;
  for (const SmallBitset s : edge_sets) {
    if (s.test(m_label)) ++out.edges_with_m;
    if (s.test(p_label)) ++out.edges_with_p;
  }
  const double n = static_cast<double>(out.half_n);
  const MatchingContradiction bounds =
      matching_counting_contradiction(delta, delta_prime, y);
  out.lemma_4_7_holds =
      static_cast<double>(out.edges_with_m) <= n * static_cast<double>(y);
  out.lemma_4_8_holds = static_cast<double>(out.edges_with_p) >= n * bounds.p_lower;
  out.lemma_4_9_holds = static_cast<double>(out.edges_with_p) <= n * bounds.p_upper;
  return out;
}

}  // namespace slocal
