#include "src/bounds/derandomization.hpp"

#include <cmath>

namespace slocal {

InstanceCount supported_instance_count(std::size_t n) {
  InstanceCount out;
  out.graphs = BigUint::pow2(n * (n - 1) / 2);
  out.id_orders = BigUint::factorial(n);
  out.inputs = BigUint::pow2(n * n);
  out.total = out.graphs * out.id_orders * out.inputs;
  out.total_bits = out.total.bit_length();
  out.claimed_bits = 3 * n * n;
  out.bound_holds = out.total <= BigUint::pow2(out.claimed_bits);
  return out;
}

HypergraphInstanceCount hypergraph_instance_count(std::size_t n) {
  HypergraphInstanceCount out;
  const std::size_t log_n =
      n <= 1 ? 1 : static_cast<std::size_t>(std::ceil(std::log2(static_cast<double>(n))));
  const BigUint hypergraphs = BigUint::pow2(2 * n * n * log_n);
  const BigUint ids = BigUint::factorial(n);
  const BigUint inputs = BigUint::pow2(n * n * n);
  out.total = hypergraphs * ids * inputs;
  out.total_bits = out.total.bit_length();
  out.claimed_bits = 4 * n * n * n;
  out.bound_holds = out.total <= BigUint::pow2(out.claimed_bits);
  return out;
}

std::size_t randomized_instance_exponent(std::size_t n) { return 3 * n * n; }

}  // namespace slocal
