// Appendix C: the derandomization lifting theorem for Supported LOCAL.
//
// Lemma C.2 bounds the number of n-node Supported LOCAL instances by
//   |G| <= 2^{C(n,2)} · n! · 2^{n²} <= 2^{3n²}
// (graphs × canonical id assignments × input-edge markings) and concludes
// D_Π(n) <= R_Π(2^{3n²}). Theorem C.3 does the same for linear hypergraphs
// with bound 2^{4n³}. This module computes the exact counts with BigUint
// and checks the paper's closed-form bounds.
#pragma once

#include <cstddef>

#include "src/bounds/bigint.hpp"

namespace slocal {

struct InstanceCount {
  BigUint graphs;        // 2^{C(n,2)}
  BigUint id_orders;     // n!
  BigUint inputs;        // 2^{n²}
  BigUint total;         // product
  std::size_t total_bits = 0;     // bit length of the product
  std::size_t claimed_bits = 0;   // 3n² (the paper's exponent)
  bool bound_holds = false;       // total <= 2^{3n²}
};

/// Exact Supported LOCAL instance count for n-node supports (Lemma C.2).
InstanceCount supported_instance_count(std::size_t n);

struct HypergraphInstanceCount {
  BigUint total;                 // 2^{2n²·ceil(log n)} · n! · 2^{n³}
  std::size_t total_bits = 0;
  std::size_t claimed_bits = 0;  // 4n³
  bool bound_holds = false;      // total <= 2^{4n³}
};

/// Linear-hypergraph instance count (Theorem C.3).
HypergraphInstanceCount hypergraph_instance_count(std::size_t n);

/// The lifting statement D(n) <= R(N) instantiated: the randomized instance
/// size N = 2^{3n²} at which a failure probability 1/N leaves room for a
/// union bound over all n-node instances. Returns the bit length of N.
std::size_t randomized_instance_exponent(std::size_t n);

}  // namespace slocal
