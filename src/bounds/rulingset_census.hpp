// The node-type decomposition of Lemma 6.6 (Section 6.2), as an executable
// census.
//
// Given an S-solution of a lifted ruling-set problem lift_{Δ,2}(Π_Δ'(k,β)),
// Lemma 6.6 classifies the nodes touching P_β/U_β labels:
//   type 1: every incident label-set contains U_β and more than Δ-Δ'
//           incident label-sets contain P_β   (discarded; at most 3|S|/4
//           when Δ >= 3Δ' and no P escapes S),
//   type 2: every incident label-set contains U_β, at most Δ-Δ' contain
//           P_β                               (recolorable with +k colors),
//   type 3: some incident label-set lacks U_β (degree discount),
//   plain:  no incident P_β/U_β at all        (already a Π(k,β-1) node).
// The census computes the classification on a concrete labeling and checks
// the counting facts the lemma's proof uses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/formalism/problem.hpp"
#include "src/graph/graph.hpp"
#include "src/lift/lift.hpp"

namespace slocal {

struct RulingsetTypeCensus {
  std::size_t type1 = 0;
  std::size_t type2 = 0;
  std::size_t type3 = 0;
  std::size_t plain = 0;
  std::size_t s_size = 0;

  /// #half-edges inside S whose label-set contains P_β (the proof bounds
  /// these by |S|·Δ/2 since P_β is incompatible with itself across an edge).
  std::size_t p_beta_half_edges = 0;
  bool p_beta_pairing_ok = false;  // no edge carries P_β on both sides
  bool type1_bound_ok = false;     // type1 <= 3|S|/4 (meaningful for Δ>=3Δ')
};

/// Classifies the S-nodes of a lifted labeling. `base` must be the
/// Π_Δ'(k, β) problem the lift was built from (the source of the P_β/U_β
/// label indices); `lifted_half_labels[2e+side]` indexes lift.label_sets().
/// delta_prime is Δ' (the input-graph degree the types compare against).
RulingsetTypeCensus rulingset_type_census(
    const Graph& g, const LiftedProblem& lift, const Problem& base,
    std::size_t beta, std::size_t delta_prime, const std::vector<bool>& in_s,
    std::span<const std::size_t> lifted_half_labels);

}  // namespace slocal
