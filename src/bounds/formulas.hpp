// Lower-bound formula calculators for the paper's theorems.
//
// Each function evaluates, at concrete finite parameters, the bound the
// corresponding theorem asserts asymptotically. The constants (ε, c) that
// the theorems leave implicit are explicit arguments with the defaults the
// proofs instantiate (e.g. c = 1 and Δ = 5Δ' in Section 4.2).
#pragma once

#include <cstddef>
#include <string>

namespace slocal {

/// Theorem 3.4's final deterministic bound:
///   min{2k, (ε(log_{Δr}(n) - c) - 4)/2} - 1
double theorem_3_4_deterministic(std::size_t k, double epsilon, double c,
                                 std::size_t delta, std::size_t r, double n);

/// Theorem 3.4's randomized bound: the deterministic bound evaluated at
/// n_det = sqrt(log(n)/3).
double theorem_3_4_randomized(std::size_t k, double epsilon, double c,
                              std::size_t delta, std::size_t r, double n);

struct MatchingBound {
  std::size_t k = 0;        // sequence length floor((Δ'-x)/y) - 2
  double det_rounds = 0;    // Ω(min{(Δ'-x)/y, log_Δ n}) instantiation
  double rand_rounds = 0;   // Ω(min{(Δ'-x)/y, log_Δ log n})
  double upper_rounds = 0;  // O(Δ'/y) matching upper bound shape
};

/// Theorem 4.1 / 1.5: x-maximal y-matching in Supported LOCAL.
MatchingBound matching_lower_bound(std::size_t delta_prime, std::size_t x,
                                   std::size_t y, std::size_t delta, double n,
                                   double epsilon = 0.1);

struct ArbdefectiveBound {
  bool applies = false;   // (α+1)c <= min{Δ', εΔ/logΔ}
  double k_threshold = 0; // min{Δ', εΔ/logΔ}
  double det_rounds = 0;  // Ω(log_Δ n)
  double rand_rounds = 0; // Ω(log_Δ log n)
};

/// Theorem 5.1 / 1.6: α-arbdefective c-coloring.
ArbdefectiveBound arbdefective_lower_bound(std::size_t alpha, std::size_t c,
                                           std::size_t delta_prime,
                                           std::size_t delta, double n,
                                           double epsilon = 0.5);

struct RulingSetBound {
  bool applies = false;    // (α+1)c <= Δ̄ and β < Δ'
  double delta_bar = 0;    // min{Δ', εΔ/logΔ} / 2^{cβ}
  double det_rounds = 0;   // Ω(min{(Δ̄/((α+1)c))^{1/β}, log_Δ n})
  double rand_rounds = 0;  // Ω(min{(Δ̄/((α+1)c))^{1/β}, log_Δ log n})
  double upper_rounds = 0; // O(β (Δ/((α+1)c))^{1/β}) known UB shape
};

/// Theorem 6.1 / 1.7: α-arbdefective c-colored β-ruling sets.
RulingSetBound rulingset_lower_bound(std::size_t alpha, std::size_t c,
                                     std::size_t beta, std::size_t delta_prime,
                                     std::size_t delta, double n,
                                     double epsilon = 0.5,
                                     double big_c = 2.0);

/// The [AAPR23] open-question instantiation after Theorem 1.7:
/// Δ' = log n / log log n, Δ = Δ' log Δ'; returns the resulting
/// Ω(log n / log log n) bound together with χ_G = Θ(Δ/log Δ).
struct MisChromaticInstance {
  double delta_prime = 0;
  double delta = 0;
  double lower_bound = 0;      // Ω(log n / loglog n)
  double chromatic_bound = 0;  // Θ(Δ / log Δ) upper bound via coloring
};
MisChromaticInstance mis_chromatic_instance(double n);

}  // namespace slocal
