#include "src/problems/classic.hpp"

#include <cassert>
#include <string>

namespace slocal {

Problem make_maximal_matching_problem(std::size_t delta) {
  assert(delta >= 2);
  LabelRegistry reg;
  const Label m = reg.intern("M");
  const Label o = reg.intern("O");
  const Label p = reg.intern("P");

  Constraint white(delta);
  {
    std::vector<Label> cfg{m};
    for (std::size_t i = 0; i + 1 < delta; ++i) cfg.push_back(o);
    white.add(Configuration(std::move(cfg)));
  }
  white.add(Configuration(std::vector<Label>(delta, p)));

  Constraint black(delta);
  {
    std::vector<std::vector<Label>> cfg{{m}};
    for (std::size_t i = 0; i + 1 < delta; ++i) cfg.push_back({o, p});
    black.add_condensed(cfg);
  }
  black.add(Configuration(std::vector<Label>(delta, o)));

  return Problem("MM_" + std::to_string(delta), std::move(reg), std::move(white),
                 std::move(black));
}

Problem make_sinkless_orientation_problem(std::size_t delta) {
  assert(delta >= 1);
  LabelRegistry reg;
  const Label out = reg.intern("O");
  const Label in = reg.intern("I");

  Constraint white(delta);
  {
    std::vector<std::vector<Label>> cfg{{out}};
    for (std::size_t i = 0; i + 1 < delta; ++i) cfg.push_back({in, out});
    white.add_condensed(cfg);
  }

  Constraint black(2);
  black.add(Configuration{in, out});

  return Problem("SO_" + std::to_string(delta), std::move(reg), std::move(white),
                 std::move(black));
}

Problem make_proper_coloring_problem(std::size_t delta, std::size_t colors) {
  assert(colors >= 1);
  LabelRegistry reg;
  std::vector<Label> color_label;
  color_label.reserve(colors);
  for (std::size_t i = 1; i <= colors; ++i) {
    color_label.push_back(reg.intern("c" + std::to_string(i)));
  }

  Constraint white(delta);
  for (const Label c : color_label) {
    white.add(Configuration(std::vector<Label>(delta, c)));
  }

  Constraint black(2);
  for (std::size_t i = 0; i < colors; ++i) {
    for (std::size_t j = i + 1; j < colors; ++j) {
      black.add(Configuration{color_label[i], color_label[j]});
    }
  }

  return Problem(std::to_string(colors) + "-coloring_" + std::to_string(delta),
                 std::move(reg), std::move(white), std::move(black));
}

Problem make_hypergraph_coloring_problem(std::size_t delta, std::size_t rank,
                                         std::size_t colors) {
  assert(colors >= 2 && rank >= 2);
  LabelRegistry reg;
  std::vector<Label> color_label;
  color_label.reserve(colors);
  for (std::size_t i = 1; i <= colors; ++i) {
    color_label.push_back(reg.intern("c" + std::to_string(i)));
  }

  Constraint white(delta);
  for (const Label c : color_label) {
    white.add(Configuration(std::vector<Label>(delta, c)));
  }

  // Hyperedges: every multiset of size `rank` except the monochromatic ones.
  Constraint black(rank);
  std::vector<std::vector<Label>> all_positions(rank, color_label);
  black.add_condensed(all_positions);
  // Remove monochromatic configurations by rebuilding without them.
  Constraint filtered(rank);
  for (const auto& cfg : black.members()) {
    bool mono = true;
    for (const Label l : cfg.labels()) mono = mono && l == cfg[0];
    if (!mono) filtered.add(cfg);
  }

  return Problem("weak-" + std::to_string(colors) + "-coloring_r" +
                     std::to_string(rank),
                 std::move(reg), std::move(white), std::move(filtered));
}

Problem make_hypergraph_matching_problem(std::size_t delta, std::size_t rank) {
  assert(delta >= 1 && rank >= 2);
  LabelRegistry reg;
  const Label m = reg.intern("M");
  const Label o = reg.intern("O");
  const Label p = reg.intern("P");

  Constraint white(delta);
  {
    std::vector<Label> cfg{m};
    for (std::size_t i = 0; i + 1 < delta; ++i) cfg.push_back(o);
    white.add(Configuration(std::move(cfg)));
  }
  white.add(Configuration(std::vector<Label>(delta, p)));

  Constraint black(rank);
  black.add(Configuration(std::vector<Label>(rank, m)));
  {
    std::vector<std::vector<Label>> cfg{{o}};
    for (std::size_t i = 0; i + 1 < rank; ++i) cfg.push_back({o, p});
    black.add_condensed(cfg);
  }

  return Problem("HMM_" + std::to_string(delta) + "_r" + std::to_string(rank),
                 std::move(reg), std::move(white), std::move(black));
}

}  // namespace slocal
