#include "src/problems/coloring_family.hpp"

#include <cassert>
#include <string>

namespace slocal {

namespace {

std::string color_set_name(SmallBitset set) {
  std::string out = "l{";
  bool first = true;
  for (const std::size_t i : set.indices()) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(i + 1);  // colors are 1-based in the paper
  }
  out += '}';
  return out;
}

}  // namespace

Problem make_coloring_problem(std::size_t delta, std::size_t c) {
  assert(c >= 1 && c <= 8);
  assert(delta >= 1);

  LabelRegistry reg;
  const Label x_label = reg.intern("X");
  const std::size_t num_sets = (std::size_t{1} << c) - 1;
  // label of color set with bit pattern b (1-based over labels): x_label+b.
  std::vector<Label> set_label(num_sets + 1, 0);
  for (std::size_t bits = 1; bits <= num_sets; ++bits) {
    set_label[bits] = reg.intern(color_set_name(SmallBitset(bits)));
  }

  Constraint white(delta);
  for (std::size_t bits = 1; bits <= num_sets; ++bits) {
    const std::size_t x = SmallBitset(bits).count() - 1;
    if (x > delta) continue;  // cannot place |C|-1 X's in Δ slots
    std::vector<Label> cfg;
    cfg.reserve(delta);
    for (std::size_t i = 0; i < delta - x; ++i) cfg.push_back(set_label[bits]);
    for (std::size_t i = 0; i < x; ++i) cfg.push_back(x_label);
    white.add(Configuration(std::move(cfg)));
  }

  Constraint black(2);
  for (std::size_t b1 = 1; b1 <= num_sets; ++b1) {
    for (std::size_t b2 = b1; b2 <= num_sets; ++b2) {
      if ((b1 & b2) == 0) {
        black.add(Configuration{set_label[b1], set_label[b2]});
      }
    }
  }
  for (std::size_t l = 0; l < reg.size(); ++l) {
    black.add(Configuration{x_label, static_cast<Label>(l)});
  }

  return Problem("Pi_" + std::to_string(delta) + "(c=" + std::to_string(c) + ")",
                 std::move(reg), std::move(white), std::move(black));
}

std::optional<Label> coloring_label(const Problem& p, SmallBitset color_set) {
  if (color_set.empty()) return std::nullopt;
  return p.registry().find(color_set_name(color_set));
}

SmallBitset coloring_label_set(const Problem& p, Label l) {
  const std::string& name = p.registry().name(l);
  if (name == "X") return SmallBitset{};
  SmallBitset out;
  // Parse "l{a,b,...}".
  std::size_t i = 2;
  while (i < name.size() && name[i] != '}') {
    std::size_t value = 0;
    while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
      value = value * 10 + static_cast<std::size_t>(name[i] - '0');
      ++i;
    }
    if (value > 0) out.set(value - 1);
    if (i < name.size() && name[i] == ',') ++i;
  }
  return out;
}

}  // namespace slocal
