// The matching problem family Π_Δ(x, y) (Definition 4.2).
//
// Π_Δ(x,y) is the black-white-formalism problem that x-maximal y-matching
// solves within 2 extra rounds (Lemma 4.4). Its white/black constraints are
//
//   white:  X^{y-1} M O^{Δ-y}
//           X^y O^x P^{Δ-y-x}
//           X^y Z O^{Δ-y-1}
//   black:  [MZPOX]^{y-1} [MX] [POX]^{Δ-y}
//           [MZPOX]^y [POX]^x [OX]^{Δ-y-x}
//           [MZPOX]^y [X] [POX]^{Δ-y-1}
//
// and Lemma 4.5 gives the round elimination step
// Π_Δ(x+y, y) is a relaxation of RE(Π_Δ(x, y)) whenever x + 2y <= Δ.
#pragma once

#include <cstddef>
#include <vector>

#include "src/formalism/problem.hpp"

namespace slocal {

struct MatchingFamilyLabels {
  Label m, p, o, x, z;
};

/// Builds Π_Δ(x, y). Requires Δ >= 2, 1 <= y <= Δ-1, 0 <= x <= Δ-y.
Problem make_matching_problem(std::size_t delta, std::size_t x, std::size_t y);

/// The label indices of a problem built by make_matching_problem.
MatchingFamilyLabels matching_labels(const Problem& p);

/// The lower bound sequence of Corollary 4.6: Π_Δ(x, y), Π_Δ(x+y, y), ...,
/// Π_Δ(x+ky, y). Requires x + (k+1)y <= Δ.
std::vector<Problem> matching_lower_bound_sequence(std::size_t delta, std::size_t x,
                                                   std::size_t y, std::size_t k);

/// Sequence length used in Section 4.2: k = floor((Δ' - x)/y) - 2.
std::size_t matching_sequence_length(std::size_t delta_prime, std::size_t x,
                                     std::size_t y);

}  // namespace slocal
