// Graph-level verifiers for the concrete problems whose lower bounds the
// paper proves. These validate the outputs of the simulator's algorithms
// and the solutions decoded from formalism-level labelings.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/formalism/label.hpp"
#include "src/graph/bipartite.hpp"
#include "src/graph/graph.hpp"
#include "src/graph/hypergraph.hpp"

namespace slocal {

/// Matching (no node matched twice) that is maximal (no edge with both
/// endpoints unmatched). `matched[e]` flags edge e.
bool is_maximal_matching(const Graph& g, const std::vector<bool>& matched);

/// x-maximal y-matching (Section 1.1): every node incident to <= y matched
/// edges, and every node with no matched edge has at least
/// min(deg(v), Δ - x) matched neighbors, where Δ = `delta` (the degree
/// bound of the input graph).
bool is_x_maximal_y_matching(const Graph& g, const std::vector<bool>& matched,
                             std::size_t x, std::size_t y, std::size_t delta);

/// Maximal independent set.
bool is_mis(const Graph& g, const std::vector<bool>& in_set);

/// (2, β)-ruling set: independent, and every node within distance β of the
/// set.
bool is_beta_ruling_set(const Graph& g, const std::vector<bool>& in_set,
                        std::size_t beta);

/// α-arbdefective c-coloring: colors in [0, c); every monochromatic edge is
/// oriented (away from `tail[e]`); every node has <= α outgoing
/// monochromatic edges. `tail[e]` must name an endpoint of e for
/// monochromatic e (ignored otherwise).
bool is_arbdefective_coloring(const Graph& g, const std::vector<std::uint32_t>& colors,
                              const std::vector<NodeId>& tail, std::size_t alpha,
                              std::size_t c);

/// α-arbdefective c-colored β-ruling set: the subgraph induced by `in_set`
/// carries an α-arbdefective c-coloring (colors/tails of non-set nodes are
/// ignored), and every node is within distance β of the set.
bool is_arbdefective_colored_ruling_set(const Graph& g,
                                        const std::vector<bool>& in_set,
                                        const std::vector<std::uint32_t>& colors,
                                        const std::vector<NodeId>& tail,
                                        std::size_t alpha, std::size_t c,
                                        std::size_t beta);

/// Sinkless orientation: every non-isolated node has >= 1 outgoing edge.
/// Edge e points away from tail[e].
bool is_sinkless_orientation(const Graph& g, const std::vector<NodeId>& tail);

/// Hypergraph maximal matching: no node in two matched hyperedges; every
/// unmatched hyperedge contains a node of a matched hyperedge.
bool is_hypergraph_maximal_matching(const Hypergraph& h,
                                    const std::vector<bool>& matched);

/// Decodes a bipartite MM_Δ labeling (problem of Appendix A) into matched
/// edge flags and validates the white/black constraints semantically:
/// returns nullopt if the labeling is not a valid maximal matching witness.
std::optional<std::vector<bool>> decode_maximal_matching_labeling(
    const BipartiteGraph& g, const std::vector<Label>& edge_labels, Label m_label);

}  // namespace slocal
