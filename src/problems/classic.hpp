// Classic problems in the black-white formalism.
//
// Maximal matching as in Appendix A (Figure 3's encoding) and sinkless
// orientation as in [BFH+16]/[BKK+23] — the problem through which the
// Supported-LOCAL round elimination idea was first demonstrated.
#pragma once

#include <cstddef>

#include "src/formalism/problem.hpp"

namespace slocal {

/// Maximal matching on Δ-regular bipartite 2-colored graphs (Appendix A):
///   white: M O^{Δ-1} | P^Δ        black: M [O P]^{Δ-1} | O^Δ
/// M = matched edge, O = other, P = pointer of an unmatched white node.
Problem make_maximal_matching_problem(std::size_t delta);

/// Sinkless orientation on Δ-regular graphs (edges = black nodes of rank 2):
///   white: O [I O]^{Δ-1}   (at least one outgoing)
///   black: I O             (each edge out of exactly one endpoint)
Problem make_sinkless_orientation_problem(std::size_t delta);

/// Proper c-coloring of Δ-regular graphs (edges as rank-2 black nodes):
///   white: i^Δ for each color i (a node announces its color on all edges)
///   black: i j for i != j
Problem make_proper_coloring_problem(std::size_t delta, std::size_t colors);

/// Weak c-coloring of Δ-regular r-uniform hypergraphs: nodes announce a
/// color on every incidence; hyperedges must not be monochromatic. The
/// non-bipartite setting of Corollary 3.3 (white = nodes of degree Δ,
/// black = hyperedges of rank r).
Problem make_hypergraph_coloring_problem(std::size_t delta, std::size_t rank,
                                         std::size_t colors);

/// Maximal matching on Δ-regular r-uniform hypergraphs (the [BBKO23]
/// problem the paper's Section 7 leaves open for Supported LOCAL):
///   white (node, deg Δ):    M O^{Δ-1} | P^Δ
///   black (hyperedge, r):   M^r | O [O P]^{r-1}
/// A hyperedge is matched when all its incidences carry M; a node is in at
/// most one matched hyperedge; an unmatched hyperedge must contain a node
/// matched elsewhere (its O incidence).
Problem make_hypergraph_matching_problem(std::size_t delta, std::size_t rank);

}  // namespace slocal
