#include "src/problems/matching_family.hpp"

#include <cassert>

namespace slocal {

Problem make_matching_problem(std::size_t delta, std::size_t x, std::size_t y) {
  assert(delta >= 2);
  assert(y >= 1 && y <= delta - 1);
  assert(x <= delta - y);

  LabelRegistry reg;
  const Label m = reg.intern("M");
  const Label p = reg.intern("P");
  const Label o = reg.intern("O");
  const Label lx = reg.intern("X");
  const Label z = reg.intern("Z");

  const auto rep = [](const std::vector<Label>& alts, std::size_t count,
                      std::vector<std::vector<Label>>& out) {
    for (std::size_t i = 0; i < count; ++i) out.push_back(alts);
  };

  Constraint white(delta);
  {
    // X^{y-1} M O^{Δ-y}
    std::vector<std::vector<Label>> cfg;
    rep({lx}, y - 1, cfg);
    rep({m}, 1, cfg);
    rep({o}, delta - y, cfg);
    white.add_condensed(cfg);
  }
  {
    // X^y O^x P^{Δ-y-x}
    std::vector<std::vector<Label>> cfg;
    rep({lx}, y, cfg);
    rep({o}, x, cfg);
    rep({p}, delta - y - x, cfg);
    white.add_condensed(cfg);
  }
  {
    // X^y Z O^{Δ-y-1}
    std::vector<std::vector<Label>> cfg;
    rep({lx}, y, cfg);
    rep({z}, 1, cfg);
    rep({o}, delta - y - 1, cfg);
    white.add_condensed(cfg);
  }

  Constraint black(delta);
  const std::vector<Label> any{m, z, p, o, lx};
  const std::vector<Label> mx{m, lx};
  const std::vector<Label> pox{p, o, lx};
  const std::vector<Label> ox{o, lx};
  {
    // [MZPOX]^{y-1} [MX] [POX]^{Δ-y}
    std::vector<std::vector<Label>> cfg;
    rep(any, y - 1, cfg);
    rep(mx, 1, cfg);
    rep(pox, delta - y, cfg);
    black.add_condensed(cfg);
  }
  {
    // [MZPOX]^y [POX]^x [OX]^{Δ-y-x}
    std::vector<std::vector<Label>> cfg;
    rep(any, y, cfg);
    rep(pox, x, cfg);
    rep(ox, delta - y - x, cfg);
    black.add_condensed(cfg);
  }
  {
    // [MZPOX]^y [X] [POX]^{Δ-y-1}
    std::vector<std::vector<Label>> cfg;
    rep(any, y, cfg);
    rep({lx}, 1, cfg);
    rep(pox, delta - y - 1, cfg);
    black.add_condensed(cfg);
  }

  return Problem("Pi_" + std::to_string(delta) + "(" + std::to_string(x) + "," +
                     std::to_string(y) + ")",
                 std::move(reg), std::move(white), std::move(black));
}

MatchingFamilyLabels matching_labels(const Problem& p) {
  MatchingFamilyLabels out{};
  out.m = p.registry().find("M").value();
  out.p = p.registry().find("P").value();
  out.o = p.registry().find("O").value();
  out.x = p.registry().find("X").value();
  out.z = p.registry().find("Z").value();
  return out;
}

std::vector<Problem> matching_lower_bound_sequence(std::size_t delta, std::size_t x,
                                                   std::size_t y, std::size_t k) {
  assert(x + (k + 1) * y <= delta);
  std::vector<Problem> out;
  out.reserve(k + 1);
  for (std::size_t i = 0; i <= k; ++i) {
    out.push_back(make_matching_problem(delta, x + i * y, y));
  }
  return out;
}

std::size_t matching_sequence_length(std::size_t delta_prime, std::size_t x,
                                     std::size_t y) {
  assert(y >= 1);
  const std::size_t quotient = (delta_prime - x) / y;
  return quotient >= 2 ? quotient - 2 : 0;
}

}  // namespace slocal
