#include "src/problems/verifiers.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace slocal {

namespace {

std::vector<std::size_t> matched_degree(const Graph& g,
                                        const std::vector<bool>& matched) {
  std::vector<std::size_t> deg(g.node_count(), 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (matched[e]) {
      ++deg[g.edge(e).u];
      ++deg[g.edge(e).v];
    }
  }
  return deg;
}

/// Distance <= beta to the set, for all nodes (multi-source BFS).
bool all_within(const Graph& g, const std::vector<bool>& in_set, std::size_t beta) {
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(g.node_count(), kInf);
  std::deque<NodeId> queue;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (in_set[v]) {
      dist[v] = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (dist[u] >= beta) continue;
    for (EdgeId e : g.incident_edges(u)) {
      const NodeId v = g.edge(e).other(u);
      if (dist[v] == kInf) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return std::all_of(dist.begin(), dist.end(),
                     [&](std::size_t d) { return d <= beta; });
}

}  // namespace

bool is_maximal_matching(const Graph& g, const std::vector<bool>& matched) {
  if (matched.size() != g.edge_count()) return false;
  const auto deg = matched_degree(g, matched);
  for (const std::size_t d : deg) {
    if (d > 1) return false;
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!matched[e] && deg[g.edge(e).u] == 0 && deg[g.edge(e).v] == 0) return false;
  }
  return true;
}

bool is_x_maximal_y_matching(const Graph& g, const std::vector<bool>& matched,
                             std::size_t x, std::size_t y, std::size_t delta) {
  if (matched.size() != g.edge_count()) return false;
  const auto deg = matched_degree(g, matched);
  for (const std::size_t d : deg) {
    if (d > y) return false;
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (deg[v] != 0) continue;
    std::size_t matched_neighbors = 0;
    for (EdgeId e : g.incident_edges(v)) {
      if (deg[g.edge(e).other(v)] > 0) ++matched_neighbors;
    }
    const std::size_t required =
        std::min(g.degree(v), delta >= x ? delta - x : std::size_t{0});
    if (matched_neighbors < required) return false;
  }
  return true;
}

bool is_mis(const Graph& g, const std::vector<bool>& in_set) {
  if (in_set.size() != g.node_count()) return false;
  for (const Edge& e : g.edges()) {
    if (in_set[e.u] && in_set[e.v]) return false;
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (in_set[v]) continue;
    bool dominated = false;
    for (EdgeId e : g.incident_edges(v)) {
      if (in_set[g.edge(e).other(v)]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

bool is_beta_ruling_set(const Graph& g, const std::vector<bool>& in_set,
                        std::size_t beta) {
  if (in_set.size() != g.node_count()) return false;
  for (const Edge& e : g.edges()) {
    if (in_set[e.u] && in_set[e.v]) return false;
  }
  return all_within(g, in_set, beta);
}

bool is_arbdefective_coloring(const Graph& g, const std::vector<std::uint32_t>& colors,
                              const std::vector<NodeId>& tail, std::size_t alpha,
                              std::size_t c) {
  if (colors.size() != g.node_count() || tail.size() != g.edge_count()) return false;
  for (const std::uint32_t col : colors) {
    if (col >= c) return false;
  }
  std::vector<std::size_t> outdeg(g.node_count(), 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    if (colors[edge.u] != colors[edge.v]) continue;
    if (tail[e] != edge.u && tail[e] != edge.v) return false;  // unoriented
    ++outdeg[tail[e]];
  }
  return std::all_of(outdeg.begin(), outdeg.end(),
                     [&](std::size_t d) { return d <= alpha; });
}

bool is_arbdefective_colored_ruling_set(const Graph& g,
                                        const std::vector<bool>& in_set,
                                        const std::vector<std::uint32_t>& colors,
                                        const std::vector<NodeId>& tail,
                                        std::size_t alpha, std::size_t c,
                                        std::size_t beta) {
  if (in_set.size() != g.node_count() || colors.size() != g.node_count() ||
      tail.size() != g.edge_count()) {
    return false;
  }
  if (!all_within(g, in_set, beta)) return false;
  // Check the arbdefective coloring on the induced subgraph.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (in_set[v] && colors[v] >= c) return false;
  }
  std::vector<std::size_t> outdeg(g.node_count(), 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    if (!in_set[edge.u] || !in_set[edge.v]) continue;
    if (colors[edge.u] != colors[edge.v]) continue;
    if (tail[e] != edge.u && tail[e] != edge.v) return false;
    ++outdeg[tail[e]];
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (in_set[v] && outdeg[v] > alpha) return false;
  }
  return true;
}

bool is_sinkless_orientation(const Graph& g, const std::vector<NodeId>& tail) {
  if (tail.size() != g.edge_count()) return false;
  std::vector<bool> has_outgoing(g.node_count(), false);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    if (tail[e] != edge.u && tail[e] != edge.v) return false;
    has_outgoing[tail[e]] = true;
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.degree(v) > 0 && !has_outgoing[v]) return false;
  }
  return true;
}

bool is_hypergraph_maximal_matching(const Hypergraph& h,
                                    const std::vector<bool>& matched) {
  if (matched.size() != h.hyperedge_count()) return false;
  std::vector<std::size_t> node_matched(h.node_count(), 0);
  for (HyperedgeId e = 0; e < h.hyperedge_count(); ++e) {
    if (!matched[e]) continue;
    for (const NodeId v : h.hyperedge(e)) ++node_matched[v];
  }
  for (const std::size_t count : node_matched) {
    if (count > 1) return false;
  }
  for (HyperedgeId e = 0; e < h.hyperedge_count(); ++e) {
    if (matched[e]) continue;
    bool blocked = false;
    for (const NodeId v : h.hyperedge(e)) blocked = blocked || node_matched[v] > 0;
    if (!blocked) return false;  // could still be added: not maximal
  }
  return true;
}

std::optional<std::vector<bool>> decode_maximal_matching_labeling(
    const BipartiteGraph& g, const std::vector<Label>& edge_labels, Label m_label) {
  if (edge_labels.size() != g.edge_count()) return std::nullopt;
  std::vector<bool> matched(g.edge_count(), false);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    matched[e] = edge_labels[e] == m_label;
  }
  // Validate as a maximal matching on the underlying graph.
  const Graph plain = g.to_graph();
  if (!is_maximal_matching(plain, matched)) return std::nullopt;
  return matched;
}

}  // namespace slocal
