#include "src/problems/rulingset_family.hpp"

#include <cassert>
#include <string>

#include "src/problems/coloring_family.hpp"
#include "src/util/bitset.hpp"

namespace slocal {

Problem make_rulingset_problem(std::size_t delta, std::size_t c, std::size_t beta) {
  if (beta == 0) return make_coloring_problem(delta, c);
  assert(c >= 1 && c <= 6);
  assert(delta >= 1);

  // Start from Π_Δ(c) and extend registry/constraints.
  Problem base = make_coloring_problem(delta, c);
  LabelRegistry reg = base.registry();
  const std::size_t base_labels = reg.size();

  std::vector<Label> p_label(beta + 1, 0);
  std::vector<Label> u_label(beta + 1, 0);
  for (std::size_t i = 1; i <= beta; ++i) {
    p_label[i] = reg.intern("P_" + std::to_string(i));
    u_label[i] = reg.intern("U_" + std::to_string(i));
  }

  Constraint white = base.white();
  for (std::size_t i = 1; i <= beta; ++i) {
    std::vector<Label> cfg;
    cfg.reserve(delta);
    cfg.push_back(p_label[i]);
    for (std::size_t j = 0; j + 1 < delta; ++j) cfg.push_back(u_label[i]);
    white.add(Configuration(std::move(cfg)));
  }

  Constraint black = base.black();
  // P_i / U_i compatible with every label of Π_Δ(c).
  for (std::size_t i = 1; i <= beta; ++i) {
    for (std::size_t l = 0; l < base_labels; ++l) {
      black.add(Configuration{p_label[i], static_cast<Label>(l)});
      black.add(Configuration{u_label[i], static_cast<Label>(l)});
    }
  }
  // U_i U_j for all pairs (including i = j).
  for (std::size_t i = 1; i <= beta; ++i) {
    for (std::size_t j = i; j <= beta; ++j) {
      black.add(Configuration{u_label[i], u_label[j]});
    }
  }
  // P_i U_j exactly when i > j.
  for (std::size_t i = 1; i <= beta; ++i) {
    for (std::size_t j = 1; j < i; ++j) {
      black.add(Configuration{p_label[i], u_label[j]});
    }
  }

  return Problem("Pi_" + std::to_string(delta) + "(c=" + std::to_string(c) +
                     ",beta=" + std::to_string(beta) + ")",
                 std::move(reg), std::move(white), std::move(black));
}

std::optional<Label> pointer_label(const Problem& p, std::size_t i) {
  return p.registry().find("P_" + std::to_string(i));
}

std::optional<Label> up_label(const Problem& p, std::size_t i) {
  return p.registry().find("U_" + std::to_string(i));
}

}  // namespace slocal
