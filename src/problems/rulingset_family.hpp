// The arbdefective colored ruling set family Π_Δ(c, β) (Definition 6.2).
//
// Extends Π_Δ(c) with pointer/up labels P_i, U_i (1 <= i <= β):
//   white adds:  P_i U_i^{Δ-1}
//   black (degree 2) adds, on top of Π_Δ(c)'s edge constraint:
//     P_i and U_i compatible with every label of Π_Δ(c),
//     U_i U_j for all i, j,
//     P_i U_j exactly when i > j.
//
// Intuition: nodes outside the ruling set point (P_i) along a path of
// length <= β towards a set node, with U_i acknowledging distance. Lemma
// 6.3: an α-arbdefective c-colored β-ruling set yields Π_Δ((α+1)c, β) in β
// rounds. For β = 0 the family coincides with Π_Δ(c).
#pragma once

#include <cstddef>

#include "src/formalism/problem.hpp"

namespace slocal {

/// Builds Π_Δ(c, β). Requires c >= 1, Δ >= 1, small c (labels 2^c + 2β + 1).
Problem make_rulingset_problem(std::size_t delta, std::size_t c, std::size_t beta);

/// Labels "P_i" / "U_i" (i in [1, β]).
std::optional<Label> pointer_label(const Problem& p, std::size_t i);
std::optional<Label> up_label(const Problem& p, std::size_t i);

}  // namespace slocal
