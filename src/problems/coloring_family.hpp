// The arbdefective-coloring problem family Π_Δ(c) (Definition 5.2).
//
// Σ = {X} ∪ {l(C) : ∅ ≠ C ⊆ {1..c}}. White (node) constraint, degree Δ:
//   l(C)^{Δ-x} X^x  with x = |C|-1, for every non-empty C;
// black (edge) constraint, degree 2:
//   l(C1) l(C2) for all disjoint non-empty C1, C2;
//   X L for every label L.
//
// Lemma 5.3: an α-arbdefective c-coloring yields a solution of
// Π_Δ((α+1)c) in 0 rounds. Lemma 5.4: for (α+1)c <= Δ the problem is a
// round elimination *fixed point*: RE(Π_Δ(k)) = Π_Δ(k).
#pragma once

#include <cstddef>

#include "src/formalism/problem.hpp"
#include "src/util/bitset.hpp"

namespace slocal {

/// Builds Π_Δ(c). Labels are interned as "X" then "l{...}" by color-subset
/// bit pattern order. Requires c >= 1, Δ >= 1, and |Σ| = 2^c within the
/// Label range.
Problem make_coloring_problem(std::size_t delta, std::size_t c);

/// The label for color set C (bits over {0..c-1}); nullopt if not a label
/// of this problem (e.g. empty set).
std::optional<Label> coloring_label(const Problem& p, SmallBitset color_set);

/// The color set denoted by a label; empty set for the X label.
SmallBitset coloring_label_set(const Problem& p, Label l);

}  // namespace slocal
