// Experiment E7 — Appendix C (Lemma C.2 / Theorem C.3): the instance-space
// counting behind the derandomization lifting theorem, computed exactly
// with arbitrary-precision integers.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/bounds/derandomization.hpp"

namespace slocal {
namespace {

void print_table() {
  std::printf(
      "\nE7  Lemma C.2: |instances(n)| = 2^(C(n,2)) * n! * 2^(n^2) <= 2^(3n^2)\n"
      "%4s | %12s | %12s | %7s\n",
      "n", "exact bits", "claimed 3n²", "holds");
  for (std::size_t n = 2; n <= 24; n += 2) {
    const auto count = supported_instance_count(n);
    std::printf("%4zu | %12zu | %12zu | %7s\n", n, count.total_bits,
                count.claimed_bits, count.bound_holds ? "yes" : "NO");
  }
  std::printf(
      "\nE7b Theorem C.3 (linear hypergraphs): bound 2^(4n^3)\n"
      "%4s | %12s | %12s | %7s\n",
      "n", "exact bits", "claimed 4n³", "holds");
  for (std::size_t n = 2; n <= 16; n += 2) {
    const auto count = hypergraph_instance_count(n);
    std::printf("%4zu | %12zu | %12zu | %7s\n", n, count.total_bits,
                count.claimed_bits, count.bound_holds ? "yes" : "NO");
  }
  std::printf(
      "\nE7c implied lifting: D(n) <= R(2^(3n^2))  (Theorem 1.3)\n"
      "     e.g. a randomized algorithm on N-node instances with N = 2^%zu\n"
      "     nodes derandomizes to deterministic n = 10 instances.\n\n",
      randomized_instance_exponent(10));
}

void BM_instance_count(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(supported_instance_count(n));
  }
}
BENCHMARK(BM_instance_count)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_hypergraph_instance_count(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hypergraph_instance_count(n));
  }
}
BENCHMARK(BM_hypergraph_instance_count)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_factorial(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigUint::factorial(n));
  }
}
BENCHMARK(BM_factorial)->Arg(50)->Arg(200)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace slocal

int main(int argc, char** argv) {
  slocal::print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
