// Experiment E3 — Theorem 5.1 / 1.6: α-arbdefective c-coloring.
//
// Table 1: the contradiction mechanism — for K_m supports, lift_{Δ,2}(Π_2(k))
// is solvable iff no chromatic contradiction (Lemma 5.7: solvable => m <= 2k
// colorable). Table 2: on Lemma 2.1-substitute graphs, the chromatic lower
// bound n/α(G) vs the 2k colors a hypothetical solution would deliver.
// Table 3: the upper-bound side — the Supported arbdefective-coloring
// algorithm's measured rounds and achieved α.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "src/bounds/formulas.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"
#include "src/lift/lift.hpp"
#include "src/problems/coloring_family.hpp"
#include "src/problems/verifiers.hpp"
#include "src/sim/algorithms.hpp"
#include "src/sim/network.hpp"
#include "src/solver/cnf_encoding.hpp"
#include "src/util/rng.hpp"

namespace slocal {
namespace {

void print_tables() {
  std::printf(
      "\nE3a lift_{Δ,2}(Π_2(2)) on K_m: solvable iff χ(K_m)=m admits 2k colors\n"
      "%4s %4s | %9s | %17s\n",
      "m", "2k", "solvable", "Lemma 5.7 verdict");
  const std::size_t k = 2;
  const Problem base = make_coloring_problem(2, k);
  for (const std::size_t m : {3u, 4u, 5u, 6u}) {
    const LiftedProblem lift(base, m - 1, 2);
    const auto lifted = lift.materialize();
    if (!lifted) continue;
    const Graph complete = make_complete(m);
    const bool solvable =
        solve_graph_halfedge_labeling_sat(complete, *lifted).has_value();
    const bool allowed = m <= 2 * k;
    std::printf("%4zu %4zu | %9s | %17s\n", m, 2 * k, solvable ? "yes" : "no",
                allowed ? "no contradiction" : "must be UNSAT");
  }

  std::printf(
      "\nE3b chromatic certificates on Lemma 2.1-substitute graphs\n"
      "%5s %3s | %6s %7s | %9s %9s\n",
      "n", "Δ", "girth", "α(G)", "χ >= n/α", "paper Θ(Δ/logΔ)");
  Rng rng(2024);
  for (const auto [n, delta] : {std::pair<std::size_t, std::size_t>{40, 6},
                                {60, 8},
                                {80, 10}}) {
    const auto g = random_regular_high_girth(n, delta, rng, 4);
    if (!g) continue;
    const auto gg = girth(*g);
    const auto alpha = independence_number_exact(*g, 200'000'000);
    if (!alpha) continue;
    const std::size_t chi_lb = chromatic_lower_bound_from_independence(n, *alpha);
    const double paper = static_cast<double>(delta) /
                         std::log2(static_cast<double>(delta));
    std::printf("%5zu %3zu | %6zu %7zu | %9zu %9.1f\n", n, delta,
                gg.value_or(0), *alpha, chi_lb, paper);
  }

  std::printf(
      "\nE3c upper bound: Supported arbdefective coloring (α = ⌊Δ'/c⌋)\n"
      "%5s %3s %3s | %7s %7s | %6s\n",
      "n", "Δ'", "c", "α", "valid", "rounds");
  for (const auto [n, delta, c] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{40, 4, 2},
        {60, 6, 2},
        {60, 6, 3},
        {80, 8, 4}}) {
    Rng local(77 + n);
    const auto g = random_regular(n, delta, local);
    if (!g) continue;
    const std::vector<bool> input(g->edge_count(), true);
    Network net(*g, input);
    ArbdefectiveColoring alg(c);
    const auto result = net.run(alg);
    const std::size_t alpha = delta / c;
    const bool ok = is_arbdefective_coloring(*g, alg.colors(),
                                             alg.edge_tails(net), alpha, c);
    std::printf("%5zu %3zu %3zu | %7zu %7s | %6zu\n", n, delta, c, alpha,
                ok ? "yes" : "NO", result.rounds);
  }
  std::printf("\n");
}

void BM_lift_coloring_unsat(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const Problem base = make_coloring_problem(2, 2);
  const LiftedProblem lift(base, m - 1, 2);
  const auto lifted = lift.materialize();
  const Graph complete = make_complete(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_graph_halfedge_labeling_sat(complete, *lifted));
  }
}
BENCHMARK(BM_lift_coloring_unsat)->Arg(5)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_independence_exact(benchmark::State& state) {
  Rng rng(5);
  const auto g = random_regular(static_cast<std::size_t>(state.range(0)), 6, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(independence_number_exact(*g, 500'000'000));
  }
}
BENCHMARK(BM_independence_exact)->Arg(30)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_arbdefective_algorithm(benchmark::State& state) {
  Rng rng(9);
  const auto g = random_regular(static_cast<std::size_t>(state.range(0)), 6, rng);
  const std::vector<bool> input(g->edge_count(), true);
  for (auto _ : state) {
    Network net(*g, input);
    ArbdefectiveColoring alg(2);
    benchmark::DoNotOptimize(net.run(alg));
  }
}
BENCHMARK(BM_arbdefective_algorithm)->Arg(60)->Arg(120)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace slocal

int main(int argc, char** argv) {
  slocal::print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
