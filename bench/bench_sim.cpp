// Simulator substrate benchmarks: raw round-execution throughput, the
// measured round complexities of every Supported-model algorithm on common
// support families (the numbers the experiment tables cite), and the
// million-node fast-path cases behind BENCH_SIM.json (E-SIM in
// EXPERIMENTS.md, gated in CI by tools/check_bench_sim.py).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"
#include "src/graph/transforms.hpp"
#include "src/problems/verifiers.hpp"
#include "src/sim/algorithms.hpp"
#include "src/sim/fast/csr_graph.hpp"
#include "src/sim/fast/csr_network.hpp"
#include "src/sim/network.hpp"
#include "src/sim/supported.hpp"
#include "src/util/rng.hpp"

namespace slocal {
namespace {

void print_table() {
  std::printf(
      "\nSimulator: measured Supported-model round complexities\n"
      "%22s %6s %3s | %8s | %6s\n",
      "algorithm", "n", "Δ", "rounds", "valid");
  Rng rng(123);
  const auto g = random_regular(200, 6, rng);
  if (!g) return;
  const std::vector<bool> input(g->edge_count(), true);
  {
    Network net(*g, input);
    ColorClassMis alg;
    const auto r = net.run(alg);
    std::printf("%22s %6zu %3zu | %8zu | %6s\n", "color-class MIS",
                g->node_count(), g->max_degree(), r.rounds,
                is_mis(*g, alg.in_mis()) ? "yes" : "NO");
  }
  {
    Network net(*g, input);
    ArbdefectiveColoring alg(3);
    const auto r = net.run(alg);
    const bool ok = is_arbdefective_coloring(*g, alg.colors(), alg.edge_tails(net),
                                             g->max_degree() / 3, 3);
    std::printf("%22s %6zu %3zu | %8zu | %6s\n", "arbdefective (c=3)",
                g->node_count(), g->max_degree(), r.rounds, ok ? "yes" : "NO");
  }
  for (const std::size_t beta : {1u, 2u}) {
    Network net(*g, input);
    BetaRulingSet alg(beta);
    const auto r = net.run(alg, 5000);
    char name[32];
    std::snprintf(name, sizeof(name), "(2,%zu)-ruling set", beta);
    std::printf("%22s %6zu %3zu | %8zu | %6s\n", name, g->node_count(),
                g->max_degree(), r.rounds,
                is_beta_ruling_set(*g, alg.in_set(), beta) ? "yes" : "NO");
  }
  {
    const BipartiteGraph cover = bipartite_double_cover(*g);
    const Graph support = cover.to_graph();
    const std::vector<bool> all(support.edge_count(), true);
    Network net(support, all);
    std::vector<std::int32_t> colors(support.node_count(), 0);
    for (std::size_t v = cover.white_count(); v < support.node_count(); ++v) {
      colors[v] = 1;
    }
    net.set_colors(colors);
    ProposalMatching alg;
    const auto r = net.run(alg, 500);
    const auto matched = alg.matched_edges(net);
    std::printf("%22s %6zu %3zu | %8zu | %6s\n", "proposal matching",
                support.node_count(), support.max_degree(), r.rounds,
                is_maximal_matching(support, matched) ? "yes" : "NO");
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// Fast-path cases: the CSR batched simulator on streamed 10^5..10^7-node
// instances. Everything deterministic (rounds, messages, output
// fingerprints) is recorded in BENCH_SIM.json and gated exactly against the
// committed baseline; wall clock and RSS are reported, never gated.

/// A message-exchanging algorithm that runs a fixed number of rounds —
/// the pure round-throughput workload for the 10^7-node case, where an
/// O(log n)-round algorithm would dominate the bench's wall budget.
class FixedRoundSpin : public Algorithm {
 public:
  explicit FixedRoundSpin(std::size_t rounds) : rounds_(rounds) {}
  void on_start(const NodeContext&, std::vector<Message>& out, bool&) override {
    for (auto& m : out) m = {1};
  }
  void on_round(const NodeContext& node, std::size_t round,
                const std::vector<Message>& inbox, std::vector<Message>& out,
                bool& halt) override {
    std::int64_t acc = static_cast<std::int64_t>(node.uid);
    for (const auto& m : inbox) {
      if (!m.empty()) acc += m[0];
    }
    for (auto& m : out) m = {acc};
    halt = round >= rounds_;
  }

 private:
  std::size_t rounds_;
};

std::uint64_t fp_mix(std::uint64_t h, std::uint64_t x) {
  h ^= x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// Order-sensitive digest of a run's observable output: per-node halt
/// rounds plus the algorithm-specific bits. Bit-identical across thread
/// counts by the CsrNetwork determinism contract.
std::uint64_t fingerprint_run(const CsrNetwork& net,
                              const std::vector<bool>& output_bits) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::size_t hr : net.halt_rounds()) h = fp_mix(h, hr);
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < output_bits.size(); ++i) {
    word = (word << 1) | (output_bits[i] ? 1u : 0u);
    if (i % 64 == 63) {
      h = fp_mix(h, word);
      word = 0;
    }
  }
  return fp_mix(h, word);
}

struct SimCase {
  std::string name;
  std::string algorithm;
  std::size_t n = 0;
  std::size_t delta = 0;
  std::size_t edges = 0;
  std::size_t threads = 1;
  std::size_t rounds = 0;
  bool completed = false;
  std::uint64_t messages = 0;
  std::uint64_t fingerprint = 0;
  double wall_ms = 0.0;        // run() only; excludes generation
  double gen_wall_ms = 0.0;    // streaming generation + CSR build
  double per_round_wall_ms = 0.0;
  double half_edge_rounds_per_sec = 0.0;  // rounds x half-edges / wall
};

struct ThreadInvariance {
  std::string case_name;
  std::size_t n = 0;
  bool identical = false;  // threads=1 vs threads=0 (all cores)
  std::uint64_t fingerprint = 0;
};

struct ReferenceDiff {
  std::string case_name;
  std::size_t n = 0;
  std::size_t rounds = 0;
  bool identical = false;  // CsrNetwork vs reference Network, all observables
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Peak resident set (VmHWM) in MiB from /proc/self/status; 0 elsewhere.
double peak_rss_mb() {
  double mb = 0.0;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return mb;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long kb = 0;
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) {
      mb = static_cast<double>(kb) / 1024.0;
      break;
    }
  }
  std::fclose(f);
  return mb;
}

/// Runs `alg` on `net` and fills the measured half of a SimCase.
template <typename Alg, typename Output>
SimCase run_sim_case(std::string name, std::string algorithm, CsrNetwork& net,
                     Alg& alg, std::size_t threads, std::size_t max_rounds,
                     Output output_bits) {
  SimCase c;
  c.name = std::move(name);
  c.algorithm = std::move(algorithm);
  c.n = net.node_count();
  c.delta = net.graph().max_degree();
  c.edges = net.graph().edge_count();
  c.threads = threads;
  CsrRunOptions options;
  options.threads = threads;
  options.max_rounds = max_rounds;
  const auto t0 = std::chrono::steady_clock::now();
  const CsrRunResult r = net.run(alg, options);
  c.wall_ms = ms_since(t0);
  c.rounds = r.rounds;
  c.completed = r.completed;
  c.messages = r.messages_sent;
  c.fingerprint = fingerprint_run(net, output_bits(alg));
  if (!r.error.empty()) std::printf("  ERROR %s: %s\n", c.name.c_str(), r.error.c_str());
  if (c.rounds > 0) c.per_round_wall_ms = c.wall_ms / static_cast<double>(c.rounds);
  if (c.wall_ms > 0.0) {
    c.half_edge_rounds_per_sec = static_cast<double>(c.rounds) *
                                 static_cast<double>(2 * c.edges) /
                                 (c.wall_ms / 1000.0);
  }
  return c;
}

void print_sim_case(const SimCase& c) {
  std::printf("%16s n=%-8zu Δ=%zu t=%zu | %5zu rounds | %8.1f ms (%.2f ms/round, %.1fM he·r/s) | fp=%016llx\n",
              c.name.c_str(), c.n, c.delta, c.threads, c.rounds, c.wall_ms,
              c.per_round_wall_ms, c.half_edge_rounds_per_sec / 1e6,
              static_cast<unsigned long long>(c.fingerprint));
}

CsrGraph build_streamed_regular(std::size_t n, std::size_t degree,
                                std::uint64_t seed, double* gen_ms) {
  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(seed);
  CsrStreamBuilder builder(n);
  const bool ok = stream_random_regular(
      n, degree, rng, [&](NodeId u, NodeId v) { builder.add_edge(u, v); });
  CsrBuildError error;
  auto csr = ok ? builder.finish(&error) : std::nullopt;
  if (gen_ms != nullptr) *gen_ms = ms_since(t0);
  if (!csr) {
    std::printf("  ERROR streaming regular(%zu,%zu): %s\n", n, degree,
                error.message.c_str());
    return CsrGraph{};
  }
  return std::move(*csr);
}

CsrGraph build_streamed_torus(std::size_t w, std::size_t h, double* gen_ms) {
  const auto t0 = std::chrono::steady_clock::now();
  CsrStreamBuilder builder(w * h);
  stream_torus(w, h, [&](NodeId u, NodeId v) { builder.add_edge(u, v); });
  CsrBuildError error;
  auto csr = builder.finish(&error);
  if (gen_ms != nullptr) *gen_ms = ms_since(t0);
  if (!csr) {
    std::printf("  ERROR streaming torus(%zu,%zu): %s\n", w, h,
                error.message.c_str());
    return CsrGraph{};
  }
  return std::move(*csr);
}

/// Small-instance differential spot check (the full harness lives in
/// tests/sim_diff_test.cpp; this pins "fast == reference" inside the bench
/// artifact itself so the CI gate sees it next to the throughput numbers).
ReferenceDiff run_reference_diff() {
  ReferenceDiff d;
  d.case_name = "regular-400-luby";
  Rng rng(515);
  const auto g = random_regular(400, 4, rng);
  if (!g) return d;
  d.n = g->node_count();
  LubyMis ref_alg(99);
  Network net(*g);
  const RunResult ref = net.run(ref_alg, 10'000);
  LubyMis fast_alg(99);
  CsrNetwork csr(CsrGraph::from_graph(*g));
  CsrRunOptions options;
  options.threads = 0;  // all cores — the adversarial setting
  const CsrRunResult fast = csr.run(fast_alg, options);
  d.rounds = fast.rounds;
  d.identical = fast.error.empty() && fast.completed == ref.completed &&
                fast.rounds == ref.rounds &&
                fast.messages_sent == ref.messages_sent &&
                csr.halt_rounds() == net.halt_rounds() &&
                fast_alg.in_mis() == ref_alg.in_mis();
  return d;
}

void write_sim_json(const std::vector<SimCase>& cases,
                    const ThreadInvariance& invariance,
                    const ReferenceDiff& diff) {
  std::FILE* f = std::fopen("BENCH_SIM.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write BENCH_SIM.json\n");
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"bench_sim\",\n"
               "  \"schema_version\": 1,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"cases\": [\n",
               std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const SimCase& c = cases[i];
    std::fprintf(f,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"algorithm\": \"%s\",\n"
                 "      \"n\": %zu, \"delta\": %zu, \"edges\": %zu,\n"
                 "      \"threads\": %zu,\n"
                 "      \"rounds\": %zu,\n"
                 "      \"completed\": %s,\n"
                 "      \"messages\": %llu,\n"
                 "      \"fingerprint\": \"%016llx\",\n"
                 "      \"wall_ms\": %.3f,\n"
                 "      \"gen_wall_ms\": %.3f,\n"
                 "      \"per_round_wall_ms\": %.3f,\n"
                 "      \"half_edge_rounds_per_sec\": %.0f\n"
                 "    }%s\n",
                 c.name.c_str(), c.algorithm.c_str(), c.n, c.delta, c.edges,
                 c.threads, c.rounds, c.completed ? "true" : "false",
                 static_cast<unsigned long long>(c.messages),
                 static_cast<unsigned long long>(c.fingerprint), c.wall_ms,
                 c.gen_wall_ms, c.per_round_wall_ms, c.half_edge_rounds_per_sec,
                 i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"thread_invariance\": {\n"
               "    \"case\": \"%s\",\n"
               "    \"n\": %zu,\n"
               "    \"threads_compared\": [1, 0],\n"
               "    \"identical\": %s,\n"
               "    \"fingerprint\": \"%016llx\"\n"
               "  },\n"
               "  \"reference_diff\": {\n"
               "    \"case\": \"%s\",\n"
               "    \"n\": %zu,\n"
               "    \"rounds\": %zu,\n"
               "    \"identical\": %s\n"
               "  },\n"
               "  \"peak_rss_mb\": %.1f\n"
               "}\n",
               invariance.case_name.c_str(), invariance.n,
               invariance.identical ? "true" : "false",
               static_cast<unsigned long long>(invariance.fingerprint),
               diff.case_name.c_str(), diff.n, diff.rounds,
               diff.identical ? "true" : "false", peak_rss_mb());
  std::fclose(f);
}

void run_fast_cases() {
  std::printf("Fast path: CSR batched simulator on streamed instances\n");
  std::vector<SimCase> cases;

  // 10^5-node Δ-regular support, Luby MIS (O(log n) rounds).
  {
    double gen_ms = 0.0;
    CsrGraph g = build_streamed_regular(100'000, 6, 71, &gen_ms);
    if (g.node_count() > 0) {
      CsrNetwork net(std::move(g));
      LubyMis alg(2024);
      auto c = run_sim_case("regular-1e5", "luby-mis", net, alg, 1, 10'000,
                            [](const LubyMis& a) { return a.in_mis(); });
      c.gen_wall_ms = gen_ms;
      print_sim_case(c);
      cases.push_back(std::move(c));
    }
  }

  // 10^6-node Δ-regular support (the acceptance case): Luby MIS to
  // completion at threads=1 and threads=0; the fingerprints must agree.
  ThreadInvariance invariance;
  {
    double gen_ms = 0.0;
    CsrGraph g = build_streamed_regular(1'000'000, 4, 72, &gen_ms);
    if (g.node_count() > 0) {
      CsrNetwork net(std::move(g));
      LubyMis alg1(2025);
      auto c1 = run_sim_case("regular-1e6", "luby-mis", net, alg1, 1, 10'000,
                             [](const LubyMis& a) { return a.in_mis(); });
      c1.gen_wall_ms = gen_ms;
      print_sim_case(c1);
      LubyMis alg_all(2025);
      auto c_all =
          run_sim_case("regular-1e6-allcores", "luby-mis", net, alg_all, 0,
                       10'000, [](const LubyMis& a) { return a.in_mis(); });
      print_sim_case(c_all);
      invariance.case_name = "regular-1e6";
      invariance.n = c1.n;
      invariance.identical = c1.fingerprint == c_all.fingerprint &&
                             c1.rounds == c_all.rounds &&
                             c1.messages == c_all.messages && c1.completed &&
                             c_all.completed;
      invariance.fingerprint = c1.fingerprint;
      cases.push_back(std::move(c1));
      cases.push_back(std::move(c_all));
    }
  }

  // 10^7-node torus, fixed 8-round message exchange: pure round-throughput
  // at the largest scale (Luby here would dominate the bench's wall budget).
  {
    double gen_ms = 0.0;
    CsrGraph g = build_streamed_torus(2'500, 4'000, &gen_ms);
    if (g.node_count() > 0) {
      CsrNetwork net(std::move(g));
      FixedRoundSpin alg(8);
      auto c = run_sim_case("torus-1e7", "spin-8", net, alg, 1, 100,
                            [](const Algorithm&) { return std::vector<bool>{}; });
      c.gen_wall_ms = gen_ms;
      print_sim_case(c);
      cases.push_back(std::move(c));
    }
  }

  const ReferenceDiff diff = run_reference_diff();
  std::printf("%16s n=%-8zu | fast==reference: %s\n", diff.case_name.c_str(),
              diff.n, diff.identical ? "yes" : "NO");
  std::printf("%16s n=%-8zu | threads 1 vs all: %s\n",
              invariance.case_name.c_str(), invariance.n,
              invariance.identical ? "bit-identical" : "DIVERGED");

  write_sim_json(cases, invariance, diff);
  std::printf("wrote BENCH_SIM.json (peak RSS %.1f MB)\n\n", peak_rss_mb());
}

void BM_round_throughput(benchmark::State& state) {
  // A do-nothing algorithm running for a fixed number of rounds: measures
  // the simulator's message-routing overhead.
  class Spin : public Algorithm {
   public:
    void on_start(const NodeContext&, std::vector<Message>& out, bool&) override {
      for (auto& m : out) m = {1};
    }
    void on_round(const NodeContext&, std::size_t round, const std::vector<Message>&,
                  std::vector<Message>& out, bool& halt) override {
      for (auto& m : out) m = {static_cast<std::int64_t>(round)};
      halt = round >= 50;
    }
  };
  Rng rng(1);
  const auto g = random_regular(static_cast<std::size_t>(state.range(0)), 6, rng);
  for (auto _ : state) {
    Network net(*g);
    Spin alg;
    benchmark::DoNotOptimize(net.run(alg, 100));
  }
  state.SetItemsProcessed(state.iterations() * 50 *
                          static_cast<std::int64_t>(g->edge_count()) * 2);
}
BENCHMARK(BM_round_throughput)->Arg(100)->Arg(400)->Arg(1600)->Unit(benchmark::kMillisecond);

void BM_supported_mis_scaling(benchmark::State& state) {
  Rng rng(2);
  const auto g = random_regular(static_cast<std::size_t>(state.range(0)), 6, rng);
  const std::vector<bool> input(g->edge_count(), true);
  for (auto _ : state) {
    Network net(*g, input);
    ColorClassMis alg;
    benchmark::DoNotOptimize(net.run(alg));
  }
}
BENCHMARK(BM_supported_mis_scaling)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_proposal_matching_scaling(benchmark::State& state) {
  Rng rng(3);
  const auto base = random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
  const BipartiteGraph cover = bipartite_double_cover(*base);
  const Graph support = cover.to_graph();
  const std::vector<bool> input(support.edge_count(), true);
  std::vector<std::int32_t> colors(support.node_count(), 0);
  for (std::size_t v = cover.white_count(); v < support.node_count(); ++v) {
    colors[v] = 1;
  }
  for (auto _ : state) {
    Network net(support, input);
    net.set_colors(colors);
    ProposalMatching alg;
    benchmark::DoNotOptimize(net.run(alg, 500));
  }
}
BENCHMARK(BM_proposal_matching_scaling)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace slocal

int main(int argc, char** argv) {
  slocal::print_table();
  slocal::run_fast_cases();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
