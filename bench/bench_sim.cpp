// Simulator substrate benchmarks: raw round-execution throughput and the
// measured round complexities of every Supported-model algorithm on common
// support families (the numbers the experiment tables cite).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"
#include "src/graph/transforms.hpp"
#include "src/problems/verifiers.hpp"
#include "src/sim/algorithms.hpp"
#include "src/sim/network.hpp"
#include "src/sim/supported.hpp"
#include "src/util/rng.hpp"

namespace slocal {
namespace {

void print_table() {
  std::printf(
      "\nSimulator: measured Supported-model round complexities\n"
      "%22s %6s %3s | %8s | %6s\n",
      "algorithm", "n", "Δ", "rounds", "valid");
  Rng rng(123);
  const auto g = random_regular(200, 6, rng);
  if (!g) return;
  const std::vector<bool> input(g->edge_count(), true);
  {
    Network net(*g, input);
    ColorClassMis alg;
    const auto r = net.run(alg);
    std::printf("%22s %6zu %3zu | %8zu | %6s\n", "color-class MIS",
                g->node_count(), g->max_degree(), r.rounds,
                is_mis(*g, alg.in_mis()) ? "yes" : "NO");
  }
  {
    Network net(*g, input);
    ArbdefectiveColoring alg(3);
    const auto r = net.run(alg);
    const bool ok = is_arbdefective_coloring(*g, alg.colors(), alg.edge_tails(net),
                                             g->max_degree() / 3, 3);
    std::printf("%22s %6zu %3zu | %8zu | %6s\n", "arbdefective (c=3)",
                g->node_count(), g->max_degree(), r.rounds, ok ? "yes" : "NO");
  }
  for (const std::size_t beta : {1u, 2u}) {
    Network net(*g, input);
    BetaRulingSet alg(beta);
    const auto r = net.run(alg, 5000);
    char name[32];
    std::snprintf(name, sizeof(name), "(2,%zu)-ruling set", beta);
    std::printf("%22s %6zu %3zu | %8zu | %6s\n", name, g->node_count(),
                g->max_degree(), r.rounds,
                is_beta_ruling_set(*g, alg.in_set(), beta) ? "yes" : "NO");
  }
  {
    const BipartiteGraph cover = bipartite_double_cover(*g);
    const Graph support = cover.to_graph();
    const std::vector<bool> all(support.edge_count(), true);
    Network net(support, all);
    std::vector<std::int32_t> colors(support.node_count(), 0);
    for (std::size_t v = cover.white_count(); v < support.node_count(); ++v) {
      colors[v] = 1;
    }
    net.set_colors(colors);
    ProposalMatching alg;
    const auto r = net.run(alg, 500);
    const auto matched = alg.matched_edges(net);
    std::printf("%22s %6zu %3zu | %8zu | %6s\n", "proposal matching",
                support.node_count(), support.max_degree(), r.rounds,
                is_maximal_matching(support, matched) ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_round_throughput(benchmark::State& state) {
  // A do-nothing algorithm running for a fixed number of rounds: measures
  // the simulator's message-routing overhead.
  class Spin : public Algorithm {
   public:
    void on_start(const NodeContext&, std::vector<Message>& out, bool&) override {
      for (auto& m : out) m = {1};
    }
    void on_round(const NodeContext&, std::size_t round, const std::vector<Message>&,
                  std::vector<Message>& out, bool& halt) override {
      for (auto& m : out) m = {static_cast<std::int64_t>(round)};
      halt = round >= 50;
    }
  };
  Rng rng(1);
  const auto g = random_regular(static_cast<std::size_t>(state.range(0)), 6, rng);
  for (auto _ : state) {
    Network net(*g);
    Spin alg;
    benchmark::DoNotOptimize(net.run(alg, 100));
  }
  state.SetItemsProcessed(state.iterations() * 50 *
                          static_cast<std::int64_t>(g->edge_count()) * 2);
}
BENCHMARK(BM_round_throughput)->Arg(100)->Arg(400)->Arg(1600)->Unit(benchmark::kMillisecond);

void BM_supported_mis_scaling(benchmark::State& state) {
  Rng rng(2);
  const auto g = random_regular(static_cast<std::size_t>(state.range(0)), 6, rng);
  const std::vector<bool> input(g->edge_count(), true);
  for (auto _ : state) {
    Network net(*g, input);
    ColorClassMis alg;
    benchmark::DoNotOptimize(net.run(alg));
  }
}
BENCHMARK(BM_supported_mis_scaling)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_proposal_matching_scaling(benchmark::State& state) {
  Rng rng(3);
  const auto base = random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
  const BipartiteGraph cover = bipartite_double_cover(*base);
  const Graph support = cover.to_graph();
  const std::vector<bool> input(support.edge_count(), true);
  std::vector<std::int32_t> colors(support.node_count(), 0);
  for (std::size_t v = cover.white_count(); v < support.node_count(); ++v) {
    colors[v] = 1;
  }
  for (auto _ : state) {
    Network net(support, input);
    net.set_colors(colors);
    ProposalMatching alg;
    benchmark::DoNotOptimize(net.run(alg, 500));
  }
}
BENCHMARK(BM_proposal_matching_scaling)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace slocal

int main(int argc, char** argv) {
  slocal::print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
