// Experiment E1 — Theorem 4.1 / 1.5: x-maximal y-matching in Supported
// LOCAL.
//
// Regenerates the theorem's content as a table: for each (Δ', x, y) the
// sequence length k = ⌊(Δ'-x)/y⌋ - 2, the Section 4.2 counting certificate
// at Δ = 5Δ' (Lemmas 4.8 vs 4.9), the lower-bound formula instantiation,
// and the measured upper bound from the proposal-matching algorithm on a
// double-cover support — LB and UB shapes should both be Θ((Δ'-x)/y).
// google-benchmark section times the certificate and the SAT confirmation.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/bounds/counting.hpp"
#include "src/bounds/formulas.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"
#include "src/graph/transforms.hpp"
#include "src/lift/lift.hpp"
#include "src/problems/matching_family.hpp"
#include "src/problems/verifiers.hpp"
#include "src/sim/algorithms.hpp"
#include "src/sim/network.hpp"
#include "src/solver/cnf_encoding.hpp"
#include "src/util/rng.hpp"

namespace slocal {
namespace {

/// Measured rounds of the proposal matching algorithm on a 2-colored
/// double-cover support with an input subgraph of max degree ~delta_prime.
std::size_t measured_matching_rounds(std::size_t delta, std::size_t delta_prime,
                                     std::uint64_t seed) {
  Rng rng(seed);
  const auto base = random_regular(40, delta, rng);
  if (!base) return 0;
  const BipartiteGraph cover = bipartite_double_cover(*base);
  const Graph support = cover.to_graph();
  // Keep ~delta_prime/delta of the edges.
  std::vector<bool> input(support.edge_count());
  const double p = static_cast<double>(delta_prime) / static_cast<double>(delta);
  for (std::size_t e = 0; e < input.size(); ++e) input[e] = rng.chance(p);
  Network net(support, input);
  std::vector<std::int32_t> colors(support.node_count(), 0);
  for (std::size_t v = cover.white_count(); v < support.node_count(); ++v) {
    colors[v] = 1;
  }
  net.set_colors(colors);
  ProposalMatching alg;
  const auto result = net.run(alg, 4 * delta + 50);
  if (!result.completed) return 0;
  return result.rounds;
}

void print_table() {
  std::printf(
      "\nE1  x-maximal y-matching (Theorem 4.1): LB certificate and UB shape\n"
      "%4s %3s %3s | %4s | %9s %9s %7s | %11s %11s | %9s\n",
      "Δ'", "x", "y", "k", "P-lower", "P-upper", "contra", "LB(det,n=1e6)",
      "LB(rand)", "UB rounds");
  for (const std::size_t delta_prime : {4u, 6u, 8u, 12u, 16u}) {
    for (const auto [x, y] : {std::pair<std::size_t, std::size_t>{0, 1},
                              {1, 1},
                              {0, 2},
                              {2, 2}}) {
      if (x + 2 * y > delta_prime) continue;
      const std::size_t delta = 5 * delta_prime;
      const std::size_t k = matching_sequence_length(delta_prime, x, y);
      const auto cert = matching_counting_contradiction(delta, delta_prime, y);
      const auto lb = matching_lower_bound(delta_prime, x, y, delta, 1e6);
      const std::size_t ub = measured_matching_rounds(delta_prime + 1, delta_prime,
                                                      1000 + delta_prime + x + y);
      std::printf("%4zu %3zu %3zu | %4zu | %9.1f %9.1f %7s | %11.2f %11.2f | %9zu\n",
                  delta_prime, x, y, k, cert.p_lower, cert.p_upper,
                  cert.contradicts ? "YES" : "no", lb.det_rounds, lb.rand_rounds,
                  ub);
    }
  }
  std::printf(
      "shape check: k and UB both scale ~ (Δ'-x)/y; certificate holds at Δ=5Δ'.\n\n");
}

void BM_counting_certificate(benchmark::State& state) {
  const std::size_t delta_prime = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t y = 1; y <= delta_prime / 2; ++y) {
      benchmark::DoNotOptimize(
          matching_counting_contradiction(5 * delta_prime, delta_prime, y));
    }
  }
}
BENCHMARK(BM_counting_certificate)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_lift_unsat_sat_solver(benchmark::State& state) {
  // SAT confirmation of lift unsolvability at the miniature scale
  // (Δ' = 2, y = 1, Δ = 7 on K_{7,7}).
  const Problem pi = make_matching_problem(2, 0, 1);
  const LiftedProblem lift(pi, 7, 7);
  const auto lifted = lift.materialize();
  const BipartiteGraph support = make_complete_bipartite(7, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_bipartite_labeling_sat(support, *lifted));
  }
}
BENCHMARK(BM_lift_unsat_sat_solver)->Unit(benchmark::kMillisecond);

void BM_proposal_matching_rounds(benchmark::State& state) {
  const std::size_t delta_prime = static_cast<std::size_t>(state.range(0));
  std::size_t rounds = 0;
  for (auto _ : state) {
    rounds = measured_matching_rounds(delta_prime + 1, delta_prime, 42);
    benchmark::DoNotOptimize(rounds);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_proposal_matching_rounds)->Arg(3)->Arg(5)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace slocal

int main(int argc, char** argv) {
  slocal::print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
