// Experiment E5 — Theorem 3.2: 0-round Supported-LOCAL solvability is
// equivalent to lift solvability.
//
// Runs the two independent deciders (direct 0-round algorithm search vs
// lift materialization + labeling solver) over a corpus and reports the
// agreement matrix; compares incremental vs from-scratch lift sweeps
// (E3's scaling path); then times lift construction/materialization.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/graph/generators.hpp"
#include "src/lift/lift.hpp"
#include "src/lift/sweep.hpp"
#include "src/problems/classic.hpp"
#include "src/problems/coloring_family.hpp"
#include "src/problems/matching_family.hpp"
#include "src/solver/zero_round.hpp"
#include "src/util/combinatorics.hpp"
#include "src/util/rng.hpp"

namespace slocal {
namespace {

void print_table() {
  std::printf(
      "\nE5  Theorem 3.2 equivalence: direct 0-round decider vs lift decider\n");
  std::size_t agree_yes = 0, agree_no = 0, disagree = 0;
  Rng rng(4242);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t alphabet = 2 + rng.below(2);
    LabelRegistry reg;
    for (std::size_t l = 0; l < alphabet; ++l) {
      reg.intern(std::string(1, static_cast<char>('A' + l)));
    }
    Constraint white(2), black(2);
    const auto fill = [&](Constraint& c) {
      for_each_multiset(alphabet, 2, [&](const std::vector<std::size_t>& pick) {
        if (rng.chance(0.6)) {
          std::vector<Label> labels;
          for (const std::size_t q : pick) labels.push_back(static_cast<Label>(q));
          c.add(Configuration(std::move(labels)));
        }
        return true;
      });
    };
    fill(white);
    fill(black);
    if (white.empty() || black.empty()) continue;
    const Problem pi("random", reg, white, black);
    const auto support = random_biregular(4, 3, 4, 3, rng);
    if (!support) continue;
    const bool direct = zero_round_white_algorithm_exists(*support, pi);
    const bool lifted = lift_solvable(*support, pi) == Verdict::kYes;
    if (direct != lifted) {
      ++disagree;
    } else if (direct) {
      ++agree_yes;
    } else {
      ++agree_no;
    }
  }
  std::printf("  corpus: random Π (Δ'=r'=2) on random (3,3)-biregular supports\n");
  std::printf("  both solvable: %zu   both unsolvable: %zu   DISAGREE: %zu\n",
              agree_yes, agree_no, disagree);
  std::printf("  Theorem 3.2 %s\n\n",
              disagree == 0 ? "verified on corpus" : "VIOLATED — investigate!");

  std::printf("E5b lift label-set growth (alphabet of lift = right-closed sets)\n");
  std::printf("%16s | %6s | %10s\n", "base problem", "|Σ|", "lift labels");
  const std::vector<Problem> bases = {
      make_sinkless_orientation_problem(3), make_maximal_matching_problem(3),
      make_matching_problem(4, 1, 1), make_coloring_problem(3, 2),
      make_coloring_problem(3, 3)};
  for (const Problem& base : bases) {
    const LiftedProblem lift(base, base.white_degree() + 2, base.black_degree());
    std::printf("%16s | %6zu | %10zu\n", base.name().c_str(),
                base.alphabet_size(), lift.label_sets().size());
  }
  std::printf("\n");
}

/// E3 scaling path: the same Δ=3, r=1 sweep over nested gadget supports,
/// once through the incremental engine and once from scratch, verdicts
/// cross-checked.
void print_sweep_comparison() {
  const Problem base = make_maximal_matching_problem(3);
  const std::size_t big_delta = 3, big_r = 1;
  const auto supports = make_gadget_supports(big_delta, big_r, 1, 8);

  LiftSweepOptions inc;
  inc.incremental = true;
  inc.certify_cores = true;
  const LiftSweepResult incremental =
      run_lift_sweep(base, big_delta, big_r, supports, inc);
  LiftSweepOptions scr;
  scr.incremental = false;
  const LiftSweepResult scratch =
      run_lift_sweep(base, big_delta, big_r, supports, scr);

  std::printf("E3b incremental vs from-scratch lift sweep (Δ=3, r=1, %s)\n",
              base.name().c_str());
  std::printf("%8s | %9s | %12s | %12s | %9s | %9s\n", "gadgets", "verdicts",
              "inc clauses+", "scr clauses", "inc ms", "scr ms");
  bool all_match = true;
  for (std::size_t i = 0; i < supports.size(); ++i) {
    const LiftSweepStep& a = incremental.steps[i];
    const LiftSweepStep& b = scratch.steps[i];
    const bool match = a.verdict == b.verdict;
    all_match = all_match && match;
    std::printf("%8zu | %9s | %12zu | %12zu | %9.3f | %9.3f\n", i + 1,
                match ? to_string(a.verdict) : "MISMATCH", a.new_clauses,
                b.new_clauses, a.wall_ms, b.wall_ms);
  }
  std::printf("  totals: clauses %zu vs %zu, wall %.3f ms vs %.3f ms (%s)\n\n",
              incremental.total_clauses, scratch.total_clauses,
              incremental.total_wall_ms, scratch.total_wall_ms,
              all_match ? "verdicts agree" : "VERDICTS DISAGREE — investigate!");
}

void BM_lift_construct(benchmark::State& state) {
  const Problem base = make_coloring_problem(3, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LiftedProblem(base, 5, 2));
  }
}
BENCHMARK(BM_lift_construct)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_lift_materialize(benchmark::State& state) {
  const Problem base = make_matching_problem(3, 1, 1);
  const std::size_t big_delta = static_cast<std::size_t>(state.range(0));
  const LiftedProblem lift(base, big_delta, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lift.materialize());
  }
}
BENCHMARK(BM_lift_materialize)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_lift_sweep(benchmark::State& state) {
  const Problem base = make_maximal_matching_problem(3);
  const auto supports =
      make_gadget_supports(3, 1, 1, static_cast<std::size_t>(state.range(0)));
  LiftSweepOptions options;
  options.incremental = state.range(1) != 0;
  options.inprocessing = state.range(2) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_lift_sweep(base, 3, 1, supports, options));
  }
}
BENCHMARK(BM_lift_sweep)
    ->Args({6, 1, 1})
    ->Args({6, 1, 0})
    ->Args({6, 0, 0})
    ->Args({8, 1, 1})
    ->Args({8, 1, 0})
    ->ArgNames({"gadgets", "incremental", "inprocess"})
    ->Unit(benchmark::kMillisecond);

void BM_zero_round_decider(benchmark::State& state) {
  const Problem so = make_sinkless_orientation_problem(2);
  const BipartiteGraph g = make_bipartite_cycle(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(zero_round_white_algorithm_exists(g, so));
  }
}
BENCHMARK(BM_zero_round_decider)->Arg(3)->Arg(5)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace slocal

int main(int argc, char** argv) {
  slocal::print_table();
  slocal::print_sweep_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
