// Experiment E2 — the round elimination engine: Lemma 4.5 steps, Lemma 5.4
// fixed points, and engine scaling in Δ and |Σ|.
//
// Prints the per-step verification table (RE alphabet/constraint sizes and
// whether the relaxation witness was found) that underlies Corollary 4.6's
// lower-bound sequences, with REStats perf counters per row; then times RE
// itself (parallel default vs forced-serial baseline).
//
// Machine-readable output: BENCH_RE.json in the working directory (schema
// documented in EXPERIMENTS.md) so the perf trajectory is comparable
// across PRs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/cert/check.hpp"
#include "src/cert/emit.hpp"
#include "src/cert/format.hpp"
#include "src/discover/discover.hpp"
#include "src/formalism/canonical.hpp"
#include "src/formalism/parser.hpp"
#include "src/formalism/relaxation.hpp"
#include "src/graph/generators.hpp"
#include "src/lift/sweep.hpp"
#include "src/net/batcher.hpp"
#include "src/net/client.hpp"
#include "src/net/tcp_server.hpp"
#include "src/problems/classic.hpp"
#include "src/problems/coloring_family.hpp"
#include "src/problems/matching_family.hpp"
#include "src/re/re_cache.hpp"
#include "src/re/round_elimination.hpp"
#include "src/re/sequence.hpp"
#include "src/serve/server.hpp"
#include "src/solver/portfolio.hpp"

namespace slocal {
namespace {

struct E2Row {
  std::size_t delta = 0, x = 0, y = 0;
  bool computed = false;
  std::size_t sigma = 0, white = 0, black = 0;
  bool relaxation_verified = false;
  double wall_ms = 0.0;         // round_eliminate, default (parallel) engine
  double serial_wall_ms = 0.0;  // round_eliminate, threads = 1
  REStats stats;                // counters of the default run
};

void print_stats_json(std::FILE* f, const REStats& s, const char* indent) {
  std::fprintf(f,
               "%s\"dfs_nodes\": %llu,\n"
               "%s\"partials_deduped\": %llu,\n"
               "%s\"extendable_calls\": %llu,\n"
               "%s\"extension_index_entries\": %llu,\n"
               "%s\"configs_enumerated\": %llu,\n"
               "%s\"domination_tests\": %llu,\n"
               "%s\"domination_skipped\": %llu,\n"
               "%s\"relaxed_multisets\": %llu,\n"
               "%s\"relaxed_witness_hits\": %llu,\n"
               "%s\"relaxed_dfs_tests\": %llu,\n"
               "%s\"extension_index_builds\": %llu,\n"
               "%s\"budget_exhausted\": %llu,\n"
               "%s\"threads_used\": %zu,\n"
               "%s\"harden_ms\": %.3f,\n"
               "%s\"dominate_ms\": %.3f,\n"
               "%s\"relax_ms\": %.3f,\n"
               "%s\"total_ms\": %.3f\n",
               indent, static_cast<unsigned long long>(s.dfs_nodes), indent,
               static_cast<unsigned long long>(s.partials_deduped), indent,
               static_cast<unsigned long long>(s.extendable_calls), indent,
               static_cast<unsigned long long>(s.extension_index_entries), indent,
               static_cast<unsigned long long>(s.configs_enumerated), indent,
               static_cast<unsigned long long>(s.domination_tests), indent,
               static_cast<unsigned long long>(s.domination_skipped), indent,
               static_cast<unsigned long long>(s.relaxed_multisets), indent,
               static_cast<unsigned long long>(s.relaxed_witness_hits), indent,
               static_cast<unsigned long long>(s.relaxed_dfs_tests), indent,
               static_cast<unsigned long long>(s.extension_index_builds), indent,
               static_cast<unsigned long long>(s.budget_exhausted), indent,
               s.threads_used, indent, s.harden_ms, indent, s.dominate_ms, indent,
               s.relax_ms, indent, s.total_ms);
}

/// E2d — a deliberately tiny node budget on the hardest E2 row: the engine
/// must abort quickly (well under the row's full runtime) with the perf
/// counters intact at the point of exhaustion.
struct BudgetDemo {
  std::size_t delta = 6, x = 1, y = 2;
  std::uint64_t max_nodes = 512;
  bool exhausted = false;
  std::uint64_t dfs_nodes_at_exhaustion = 0;
  double wall_ms = 0.0;
};

/// E2e — the racing portfolio on a concrete labeling instance.
struct PortfolioDemo {
  std::string verdict;
  std::string winner;
  std::uint64_t nodes = 0;
  std::uint64_t conflicts = 0;
  double wall_ms = 0.0;
};

/// E2f — the incremental lift sweep vs the from-scratch baseline on the E3
/// workload (lift_{3,1}(MM_3) over nested gadget supports). The gated
/// invariant is verdicts_match; the tracked payoff is clauses/wall-time
/// saved by assumption-guarded reuse.
struct SweepDemo {
  std::size_t big_delta = 3, big_r = 1;
  std::size_t supports = 0;
  bool verdicts_match = false;
  std::size_t incremental_clauses = 0, scratch_clauses = 0;
  std::uint64_t incremental_conflicts = 0, scratch_conflicts = 0;
  double incremental_wall_ms = 0.0, scratch_wall_ms = 0.0;
  std::size_t cores_certified = 0;
};

/// E2i — CDCL inprocessing armed vs disarmed on two incremental lift
/// sweeps: the ISSUE 6 acceptance instance lift_{3,1}(MM_3) over 8 nested
/// gadget supports (all-SAT, conflict-free — it pins that the pipeline
/// never *costs* conflicts and that probing runs), and lift_{2,2}(MM_2)
/// over growing cycles (guarded non-nested reuse leaves redundant clauses
/// behind, which is exactly what subsumption + vivification eat — the armed
/// run must strictly reduce conflicts). Verdicts must match in both; wall
/// time is reported, not gated.
struct InprocessRun {
  std::size_t big_delta = 0, big_r = 0;
  std::size_t supports = 0;
  bool verdicts_match = false;
  std::uint64_t conflicts_on = 0, conflicts_off = 0;
  std::uint64_t propagations_on = 0, propagations_off = 0;
  double wall_on_ms = 0.0, wall_off_ms = 0.0;
  SatStats stats;  // accumulated-solver counters of the armed run
};

struct InprocessDemo {
  InprocessRun gadgets;  // lift_{3,1}(MM_3), 8 nested gadget supports
  InprocessRun cycles;   // lift_{2,2}(MM_2), growing cycle supports
};

void print_sat_stats_json(std::FILE* f, const SatStats& s, const char* indent) {
  std::fprintf(f,
               "%s\"inprocess_runs\": %llu,\n"
               "%s\"subsumed_clauses\": %llu,\n"
               "%s\"strengthened_clauses\": %llu,\n"
               "%s\"vivified_clauses\": %llu,\n"
               "%s\"probed_literals\": %llu,\n"
               "%s\"failed_literals\": %llu,\n"
               "%s\"eliminated_vars\": %llu,\n"
               "%s\"substituted_vars\": %llu,\n"
               "%s\"inprocess_units\": %llu,\n"
               "%s\"core_probe_solves\": %llu,\n"
               "%s\"core_probe_conflicts\": %llu,\n"
               "%s\"core_literals_removed\": %llu\n",
               indent, static_cast<unsigned long long>(s.inprocess_runs), indent,
               static_cast<unsigned long long>(s.subsumed_clauses), indent,
               static_cast<unsigned long long>(s.strengthened_clauses), indent,
               static_cast<unsigned long long>(s.vivified_clauses), indent,
               static_cast<unsigned long long>(s.probed_literals), indent,
               static_cast<unsigned long long>(s.failed_literals), indent,
               static_cast<unsigned long long>(s.eliminated_vars), indent,
               static_cast<unsigned long long>(s.substituted_vars), indent,
               static_cast<unsigned long long>(s.inprocess_units), indent,
               static_cast<unsigned long long>(s.core_probe_solves), indent,
               static_cast<unsigned long long>(s.core_probe_conflicts), indent,
               static_cast<unsigned long long>(s.core_literals_removed));
}

/// E2g — the cross-step RE cache on the E2 sequence set (Corollary 4.6
/// matching sequence), verified with cache off, cache on (cold), and cache
/// on (warm, same cache again). The gated invariants are verdicts_match,
/// an all-hit warm run with 0 DFS nodes, and the warm/cold wall ratio; plus
/// intra-run short-circuiting on a fixed-point chain (Π_4(3) repeated under
/// fresh renamings, the Lemma 5.4 workload).
struct CacheDemo {
  std::size_t steps = 0;
  bool verdicts_match = false;
  std::uint64_t cold_hits = 0, cold_misses = 0;
  std::uint64_t warm_hits = 0, warm_misses = 0;
  std::uint64_t warm_dfs_nodes = 0;
  double off_wall_ms = 0.0, cold_wall_ms = 0.0, warm_wall_ms = 0.0;
  double warm_canonical_ms = 0.0;
  std::size_t chain_steps = 0;
  std::uint64_t chain_hits = 0;  // steps answered within one cold chain run
  std::uint64_t chain_dfs_nodes_after_first = 0;
};

/// E2h — proof certificates (src/cert): emission and independent checking
/// on two of the acceptance instances — the Δ'=3 matching sequence
/// (Corollary 4.6, configuration-mapping witnesses) and the C_3 lift-UNSAT
/// claim (Theorem 3.2 side, DRAT refutation checked by RUP only). The gated
/// invariants are the three validity flags; the tracked payoff is that
/// checking stays far cheaper than emission (the checker re-derives
/// witnesses and proofs, never re-runs the searches).
struct CertDemo {
  std::size_t sequence_steps = 0;
  bool sequence_valid = false;
  double sequence_emit_wall_ms = 0.0;
  double sequence_check_wall_ms = 0.0;
  std::size_t sequence_bytes = 0;
  std::size_t lift_proof_steps = 0;
  bool lift_valid = false;
  double lift_emit_wall_ms = 0.0;
  double lift_check_wall_ms = 0.0;
  std::size_t lift_bytes = 0;
  bool roundtrip_valid = false;  // save -> load -> recheck, both kinds
};

/// E2j — the lower-bound service under load and under injected faults: a
/// sequential verdict phase, an overload burst that must shed at admission,
/// a deliberately torn checkpoint, and a second server instance that must
/// recover from the previous good generation and reproduce every verdict
/// from its warm cache. The gated invariants are verdicts_match,
/// admission_rejects > 0, checkpoint_recoveries >= 1, and
/// final_checkpoint_valid; requests_per_sec is reported, not gated.
struct ServeDemo {
  std::size_t requests = 0;  // total request lines sent in run 1
  std::uint64_t ok = 0;
  std::uint64_t admission_rejects = 0;
  std::uint64_t checkpoint_failures = 0;
  std::string recovered_from;  // run 2's recovery source
  std::uint64_t checkpoint_recoveries = 0;
  bool verdicts_match = false;
  bool final_checkpoint_valid = false;
  std::uint64_t warm_cache_hits = 0;
  double requests_per_sec = 0.0;
  double wall_ms = 0.0;
  // Socket phase (schema v9): the same sweep workload once per-request
  // through a plain server (the unbatched reference) and once over N
  // concurrent loopback connections through TcpServer + SweepBatcher. The
  // gated invariants are socket_verdicts_match (socket responses reproduce
  // the reference verdicts token-for-token), socket_batch_groups >= 1, and
  // socket_batch_peak >= 2 (the dispatcher really coalesced concurrent
  // sweeps); throughput is reported, never gated.
  std::size_t socket_connections = 0;
  std::size_t socket_requests = 0;
  std::uint64_t socket_batch_groups = 0;
  std::uint64_t socket_batched_requests = 0;
  std::uint64_t socket_batch_peak = 0;
  std::uint64_t socket_single_dispatch = 0;
  std::uint64_t unbatched_dispatches = 0;  // reference run, one solve per sweep
  bool socket_verdicts_match = false;
  double socket_requests_per_sec = 0.0;
  double socket_wall_ms = 0.0;
};

/// E2k — the automatic discovery driver on the E4 rediscovery workloads:
/// the 2-coloring fixed point (pump, target 3) and the Δ'=3 matching chain
/// (pool move, target 1). The gated invariants are certs_valid (every
/// emitted certificate passes check_certificate) and thread_invariance
/// (threads=4 reproduces the threads=1 discovery log and certificate bytes
/// exactly); walls and counters are reported, never gated.
struct DiscoverRun {
  std::size_t target = 0;
  std::string status;
  bool pumped = false;
  std::uint64_t expansions = 0;
  std::uint64_t frontier_peak = 0;
  std::uint64_t nodes = 0;
  std::uint64_t cache_hits = 0, cache_misses = 0;
  std::uint64_t certs_emitted = 0;
  std::size_t cert_bytes = 0;
  double wall_ms = 0.0;
};

struct DiscoverDemo {
  DiscoverRun coloring;  // 2-coloring pump
  DiscoverRun matching;  // Δ'=3 matching chain
  bool certs_valid = false;
  bool thread_invariance = false;
};

void write_json(const std::vector<E2Row>& rows, const REStats& totals,
                double table_wall_ms, double serial_table_wall_ms,
                const BudgetDemo& budget_demo, const PortfolioDemo& portfolio_demo,
                const SweepDemo& sweep_demo, const CacheDemo& cache_demo,
                const CertDemo& cert_demo, const InprocessDemo& inprocess_demo,
                const ServeDemo& serve_demo, const DiscoverDemo& discover_demo) {
  std::FILE* f = std::fopen("BENCH_RE.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write BENCH_RE.json\n");
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"bench_re\",\n"
               "  \"schema_version\": 9,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"e2_table_wall_ms\": %.3f,\n"
               "  \"e2_table_serial_wall_ms\": %.3f,\n"
               "  \"e2_rows\": [\n",
               std::thread::hardware_concurrency(), table_wall_ms,
               serial_table_wall_ms);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const E2Row& r = rows[i];
    std::fprintf(f,
                 "    {\n"
                 "      \"delta\": %zu, \"x\": %zu, \"y\": %zu,\n"
                 "      \"computed\": %s,\n"
                 "      \"sigma\": %zu, \"white\": %zu, \"black\": %zu,\n"
                 "      \"relaxation_verified\": %s,\n"
                 "      \"wall_ms\": %.3f,\n"
                 "      \"serial_wall_ms\": %.3f,\n"
                 "      \"stats\": {\n",
                 r.delta, r.x, r.y, r.computed ? "true" : "false", r.sigma, r.white,
                 r.black, r.relaxation_verified ? "true" : "false", r.wall_ms,
                 r.serial_wall_ms);
    print_stats_json(f, r.stats, "        ");
    std::fprintf(f, "      }\n    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"e2_totals\": {\n");
  print_stats_json(f, totals, "    ");
  std::fprintf(f,
               "  },\n"
               "  \"budget_demo\": {\n"
               "    \"delta\": %zu, \"x\": %zu, \"y\": %zu,\n"
               "    \"max_nodes\": %llu,\n"
               "    \"exhausted\": %s,\n"
               "    \"dfs_nodes_at_exhaustion\": %llu,\n"
               "    \"wall_ms\": %.3f\n"
               "  },\n",
               budget_demo.delta, budget_demo.x, budget_demo.y,
               static_cast<unsigned long long>(budget_demo.max_nodes),
               budget_demo.exhausted ? "true" : "false",
               static_cast<unsigned long long>(budget_demo.dfs_nodes_at_exhaustion),
               budget_demo.wall_ms);
  std::fprintf(f,
               "  \"portfolio_demo\": {\n"
               "    \"verdict\": \"%s\",\n"
               "    \"winner\": \"%s\",\n"
               "    \"nodes\": %llu,\n"
               "    \"conflicts\": %llu,\n"
               "    \"wall_ms\": %.3f\n"
               "  },\n",
               portfolio_demo.verdict.c_str(), portfolio_demo.winner.c_str(),
               static_cast<unsigned long long>(portfolio_demo.nodes),
               static_cast<unsigned long long>(portfolio_demo.conflicts),
               portfolio_demo.wall_ms);
  std::fprintf(f,
               "  \"incremental_sweep_demo\": {\n"
               "    \"big_delta\": %zu, \"big_r\": %zu,\n"
               "    \"supports\": %zu,\n"
               "    \"verdicts_match\": %s,\n"
               "    \"incremental_clauses\": %zu,\n"
               "    \"scratch_clauses\": %zu,\n"
               "    \"incremental_conflicts\": %llu,\n"
               "    \"scratch_conflicts\": %llu,\n"
               "    \"incremental_wall_ms\": %.3f,\n"
               "    \"scratch_wall_ms\": %.3f,\n"
               "    \"cores_certified\": %zu\n"
               "  },\n",
               sweep_demo.big_delta, sweep_demo.big_r, sweep_demo.supports,
               sweep_demo.verdicts_match ? "true" : "false",
               sweep_demo.incremental_clauses, sweep_demo.scratch_clauses,
               static_cast<unsigned long long>(sweep_demo.incremental_conflicts),
               static_cast<unsigned long long>(sweep_demo.scratch_conflicts),
               sweep_demo.incremental_wall_ms, sweep_demo.scratch_wall_ms,
               sweep_demo.cores_certified);
  std::fprintf(f,
               "  \"re_cache_demo\": {\n"
               "    \"steps\": %zu,\n"
               "    \"verdicts_match\": %s,\n"
               "    \"cold_hits\": %llu,\n"
               "    \"cold_misses\": %llu,\n"
               "    \"warm_hits\": %llu,\n"
               "    \"warm_misses\": %llu,\n"
               "    \"warm_dfs_nodes\": %llu,\n"
               "    \"off_wall_ms\": %.3f,\n"
               "    \"cold_wall_ms\": %.3f,\n"
               "    \"warm_wall_ms\": %.3f,\n"
               "    \"warm_canonical_ms\": %.3f,\n"
               "    \"chain_steps\": %zu,\n"
               "    \"chain_hits\": %llu,\n"
               "    \"chain_dfs_nodes_after_first\": %llu\n"
               "  },\n",
               cache_demo.steps, cache_demo.verdicts_match ? "true" : "false",
               static_cast<unsigned long long>(cache_demo.cold_hits),
               static_cast<unsigned long long>(cache_demo.cold_misses),
               static_cast<unsigned long long>(cache_demo.warm_hits),
               static_cast<unsigned long long>(cache_demo.warm_misses),
               static_cast<unsigned long long>(cache_demo.warm_dfs_nodes),
               cache_demo.off_wall_ms, cache_demo.cold_wall_ms,
               cache_demo.warm_wall_ms, cache_demo.warm_canonical_ms,
               cache_demo.chain_steps,
               static_cast<unsigned long long>(cache_demo.chain_hits),
               static_cast<unsigned long long>(cache_demo.chain_dfs_nodes_after_first));
  std::fprintf(f,
               "  \"cert_demo\": {\n"
               "    \"sequence_steps\": %zu,\n"
               "    \"sequence_valid\": %s,\n"
               "    \"sequence_emit_wall_ms\": %.3f,\n"
               "    \"sequence_check_wall_ms\": %.3f,\n"
               "    \"sequence_bytes\": %zu,\n"
               "    \"lift_proof_steps\": %zu,\n"
               "    \"lift_valid\": %s,\n"
               "    \"lift_emit_wall_ms\": %.3f,\n"
               "    \"lift_check_wall_ms\": %.3f,\n"
               "    \"lift_bytes\": %zu,\n"
               "    \"roundtrip_valid\": %s\n"
               "  },\n",
               cert_demo.sequence_steps, cert_demo.sequence_valid ? "true" : "false",
               cert_demo.sequence_emit_wall_ms, cert_demo.sequence_check_wall_ms,
               cert_demo.sequence_bytes, cert_demo.lift_proof_steps,
               cert_demo.lift_valid ? "true" : "false", cert_demo.lift_emit_wall_ms,
               cert_demo.lift_check_wall_ms, cert_demo.lift_bytes,
               cert_demo.roundtrip_valid ? "true" : "false");
  std::fprintf(f, "  \"inprocessing_demo\": {\n");
  const std::pair<const char*, const InprocessRun&> inprocess_runs[] = {
      {"gadgets", inprocess_demo.gadgets}, {"cycles", inprocess_demo.cycles}};
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& [tag, run] = inprocess_runs[i];
    std::fprintf(f,
                 "    \"%s\": {\n"
                 "      \"big_delta\": %zu, \"big_r\": %zu,\n"
                 "      \"supports\": %zu,\n"
                 "      \"verdicts_match\": %s,\n"
                 "      \"conflicts_on\": %llu,\n"
                 "      \"conflicts_off\": %llu,\n"
                 "      \"propagations_on\": %llu,\n"
                 "      \"propagations_off\": %llu,\n"
                 "      \"wall_on_ms\": %.3f,\n"
                 "      \"wall_off_ms\": %.3f,\n"
                 "      \"sat_stats\": {\n",
                 tag, run.big_delta, run.big_r, run.supports,
                 run.verdicts_match ? "true" : "false",
                 static_cast<unsigned long long>(run.conflicts_on),
                 static_cast<unsigned long long>(run.conflicts_off),
                 static_cast<unsigned long long>(run.propagations_on),
                 static_cast<unsigned long long>(run.propagations_off),
                 run.wall_on_ms, run.wall_off_ms);
    print_sat_stats_json(f, run.stats, "        ");
    std::fprintf(f, "      }\n    }%s\n", i == 0 ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f,
               "  \"serve_demo\": {\n"
               "    \"requests\": %zu,\n"
               "    \"ok\": %llu,\n"
               "    \"admission_rejects\": %llu,\n"
               "    \"checkpoint_failures\": %llu,\n"
               "    \"recovered_from\": \"%s\",\n"
               "    \"checkpoint_recoveries\": %llu,\n"
               "    \"verdicts_match\": %s,\n"
               "    \"final_checkpoint_valid\": %s,\n"
               "    \"warm_cache_hits\": %llu,\n"
               "    \"requests_per_sec\": %.1f,\n"
               "    \"wall_ms\": %.3f,\n"
               "    \"socket\": {\n"
               "      \"connections\": %zu,\n"
               "      \"requests\": %zu,\n"
               "      \"batch_groups\": %llu,\n"
               "      \"batched_requests\": %llu,\n"
               "      \"batch_peak\": %llu,\n"
               "      \"single_dispatch\": %llu,\n"
               "      \"unbatched_dispatches\": %llu,\n"
               "      \"verdicts_match\": %s,\n"
               "      \"requests_per_sec\": %.1f,\n"
               "      \"wall_ms\": %.3f\n"
               "    }\n"
               "  },\n",
               serve_demo.requests, static_cast<unsigned long long>(serve_demo.ok),
               static_cast<unsigned long long>(serve_demo.admission_rejects),
               static_cast<unsigned long long>(serve_demo.checkpoint_failures),
               serve_demo.recovered_from.c_str(),
               static_cast<unsigned long long>(serve_demo.checkpoint_recoveries),
               serve_demo.verdicts_match ? "true" : "false",
               serve_demo.final_checkpoint_valid ? "true" : "false",
               static_cast<unsigned long long>(serve_demo.warm_cache_hits),
               serve_demo.requests_per_sec, serve_demo.wall_ms,
               serve_demo.socket_connections, serve_demo.socket_requests,
               static_cast<unsigned long long>(serve_demo.socket_batch_groups),
               static_cast<unsigned long long>(serve_demo.socket_batched_requests),
               static_cast<unsigned long long>(serve_demo.socket_batch_peak),
               static_cast<unsigned long long>(serve_demo.socket_single_dispatch),
               static_cast<unsigned long long>(serve_demo.unbatched_dispatches),
               serve_demo.socket_verdicts_match ? "true" : "false",
               serve_demo.socket_requests_per_sec, serve_demo.socket_wall_ms);
  std::fprintf(f, "  \"discover_demo\": {\n");
  const std::pair<const char*, const DiscoverRun&> discover_runs[] = {
      {"coloring", discover_demo.coloring}, {"matching", discover_demo.matching}};
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& [tag, run] = discover_runs[i];
    std::fprintf(f,
                 "    \"%s\": {\n"
                 "      \"target\": %zu,\n"
                 "      \"status\": \"%s\",\n"
                 "      \"pumped\": %s,\n"
                 "      \"expansions\": %llu,\n"
                 "      \"frontier_peak\": %llu,\n"
                 "      \"nodes\": %llu,\n"
                 "      \"cache_hits\": %llu,\n"
                 "      \"cache_misses\": %llu,\n"
                 "      \"certs_emitted\": %llu,\n"
                 "      \"cert_bytes\": %zu,\n"
                 "      \"wall_ms\": %.3f\n"
                 "    },\n",
                 tag, run.target, run.status.c_str(), run.pumped ? "true" : "false",
                 static_cast<unsigned long long>(run.expansions),
                 static_cast<unsigned long long>(run.frontier_peak),
                 static_cast<unsigned long long>(run.nodes),
                 static_cast<unsigned long long>(run.cache_hits),
                 static_cast<unsigned long long>(run.cache_misses),
                 static_cast<unsigned long long>(run.certs_emitted),
                 run.cert_bytes, run.wall_ms);
  }
  std::fprintf(f,
               "    \"certs_valid\": %s,\n"
               "    \"thread_invariance\": %s\n"
               "  }\n",
               discover_demo.certs_valid ? "true" : "false",
               discover_demo.thread_invariance ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_RE.json\n\n");
}

void print_table() {
  std::printf(
      "\nE2  round elimination steps (Lemma 4.5: Π_Δ(x+y,y) relaxes RE(Π_Δ(x,y)))\n"
      "%3s %3s %3s | %8s %6s %6s | %10s | %9s %9s\n",
      "Δ", "x", "y", "|Σ(RE)|", "|W|", "|B|", "relaxation", "par ms", "ser ms");
  const std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> params{
      {4, 0, 1}, {4, 1, 1}, {4, 2, 1}, {5, 0, 1}, {5, 1, 1}, {5, 1, 2}, {6, 1, 2}};
  std::vector<E2Row> rows;
  REStats totals;
  double table_wall_ms = 0.0;
  double serial_table_wall_ms = 0.0;
  for (const auto [delta, x, y] : params) {
    E2Row row;
    row.delta = delta;
    row.x = x;
    row.y = y;
    const Problem pi = make_matching_problem(delta, x, y);

    REOptions options;
    options.max_configurations = 5'000'000;
    options.stats = &row.stats;
    const auto t0 = std::chrono::steady_clock::now();
    const auto re = round_eliminate(pi, options);
    row.wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    table_wall_ms += row.wall_ms;

    REOptions serial = options;
    serial.stats = nullptr;
    serial.threads = 1;
    const auto t1 = std::chrono::steady_clock::now();
    const auto re_serial = round_eliminate(pi, serial);
    row.serial_wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t1)
            .count();
    serial_table_wall_ms += row.serial_wall_ms;

    if (!re) {
      std::printf("%3zu %3zu %3zu | (resource cap exceeded)\n", delta, x, y);
      rows.push_back(row);
      totals += row.stats;
      continue;
    }
    row.computed = true;
    row.sigma = re->alphabet_size();
    row.white = re->white().size();
    row.black = re->black().size();
    const Problem relaxed = make_matching_problem(delta, x + y, y);
    row.relaxation_verified = relaxation_label_map(*re, relaxed).has_value() ||
                              find_relaxation(*re, relaxed, 20'000'000).has_value();
    std::printf("%3zu %3zu %3zu | %8zu %6zu %6zu | %10s | %9.2f %9.2f\n", delta, x, y,
                row.sigma, row.white, row.black,
                row.relaxation_verified ? "verified" : "MISSING", row.wall_ms,
                row.serial_wall_ms);
    std::printf("          |   %s\n", row.stats.to_string().c_str());
    rows.push_back(row);
    totals += row.stats;
  }
  std::printf("E2 RE wall totals: parallel %.2f ms, serial %.2f ms\n", table_wall_ms,
              serial_table_wall_ms);

  std::printf(
      "\nE2b fixed points (Lemma 5.4: RE(Π_Δ(k)) = Π_Δ(k) for k <= Δ)\n"
      "%3s %3s | %11s\n",
      "Δ", "k", "fixed point");
  for (const auto [delta, k] : {std::pair<std::size_t, std::size_t>{3, 2},
                                {4, 2},
                                {3, 3},
                                {4, 3},
                                {5, 2}}) {
    const Problem pi = make_coloring_problem(delta, k);
    std::printf("%3zu %3zu | %11s\n", delta, k,
                is_fixed_point(pi) ? "yes" : "NO");
  }

  std::printf(
      "\nE2c sinkless orientation chain: RE(SO) = SO' and RE(SO') = SO'\n");
  for (const std::size_t delta : {3u, 4u, 5u}) {
    const Problem so = make_sinkless_orientation_problem(delta);
    const auto so_prime = round_eliminate(so);
    std::printf("  Δ=%zu: RE(SO) computed=%s, SO' fixed point=%s\n", delta,
                so_prime ? "yes" : "no",
                so_prime && is_fixed_point(*so_prime) ? "yes" : "NO");
  }

  // E2d: tiny node budget on the hardest row — must abort fast, not hang.
  BudgetDemo budget_demo;
  {
    const Problem pi = make_matching_problem(budget_demo.delta, budget_demo.x,
                                             budget_demo.y);
    REStats stats;
    REOptions options;
    options.max_configurations = 5'000'000;
    options.max_nodes = budget_demo.max_nodes;
    options.stats = &stats;
    const auto t0 = std::chrono::steady_clock::now();
    const auto re = round_eliminate(pi, options);
    budget_demo.wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    budget_demo.exhausted = !re.has_value() && stats.budget_exhausted > 0;
    budget_demo.dfs_nodes_at_exhaustion = stats.dfs_nodes;
    std::printf(
        "\nE2d budgeted RE, Δ=%zu x=%zu y=%zu, max_nodes=%llu: %s after %llu "
        "dfs nodes in %.2f ms\n",
        budget_demo.delta, budget_demo.x, budget_demo.y,
        static_cast<unsigned long long>(budget_demo.max_nodes),
        budget_demo.exhausted ? "exhausted" : "COMPLETED (cap too high?)",
        static_cast<unsigned long long>(budget_demo.dfs_nodes_at_exhaustion),
        budget_demo.wall_ms);
  }

  // E2e: the racing portfolio on a concrete labeling instance.
  PortfolioDemo portfolio_demo;
  {
    const Problem pi = make_matching_problem(3, 0, 1);
    const BipartiteGraph g = make_complete_bipartite(3, 3);
    const PortfolioResult result = solve_labeling_portfolio(g, pi);
    portfolio_demo.verdict = to_string(result.verdict);
    portfolio_demo.winner = result.winner;
    portfolio_demo.nodes = result.nodes;
    portfolio_demo.conflicts = result.conflicts;
    portfolio_demo.wall_ms = result.wall_ms;
    std::printf(
        "E2e portfolio, matching Δ=3 on K_{3,3}: %s (winner: %s) "
        "[nodes=%llu conflicts=%llu wall=%.2f ms]\n\n",
        portfolio_demo.verdict.c_str(), portfolio_demo.winner.c_str(),
        static_cast<unsigned long long>(portfolio_demo.nodes),
        static_cast<unsigned long long>(portfolio_demo.conflicts),
        portfolio_demo.wall_ms);
  }

  // E2f: incremental lift sweep vs from-scratch baseline on the E3 workload.
  SweepDemo sweep_demo;
  {
    const Problem mm = make_maximal_matching_problem(3);
    const auto supports =
        make_gadget_supports(sweep_demo.big_delta, sweep_demo.big_r, 1, 8);
    sweep_demo.supports = supports.size();

    LiftSweepOptions inc;
    inc.incremental = true;
    inc.certify_cores = true;
    const LiftSweepResult a = run_lift_sweep(mm, sweep_demo.big_delta,
                                             sweep_demo.big_r, supports, inc);
    LiftSweepOptions scr;
    scr.incremental = false;
    const LiftSweepResult b = run_lift_sweep(mm, sweep_demo.big_delta,
                                             sweep_demo.big_r, supports, scr);

    sweep_demo.verdicts_match =
        a.lift_materialized && b.lift_materialized && a.steps.size() == b.steps.size();
    for (std::size_t i = 0; sweep_demo.verdicts_match && i < a.steps.size(); ++i) {
      sweep_demo.verdicts_match = a.steps[i].verdict == b.steps[i].verdict &&
                                  a.steps[i].verdict != Verdict::kExhausted;
    }
    for (const LiftSweepStep& step : a.steps) {
      if (step.verdict == Verdict::kNo && step.core_check == Verdict::kNo) {
        ++sweep_demo.cores_certified;
      }
    }
    sweep_demo.incremental_clauses = a.total_clauses;
    sweep_demo.scratch_clauses = b.total_clauses;
    sweep_demo.incremental_conflicts = a.total_conflicts;
    sweep_demo.scratch_conflicts = b.total_conflicts;
    sweep_demo.incremental_wall_ms = a.total_wall_ms;
    sweep_demo.scratch_wall_ms = b.total_wall_ms;
    std::printf(
        "E2f incremental sweep, lift_{%zu,%zu}(MM_3) over %zu gadget supports: "
        "verdicts %s | clauses %zu vs %zu | conflicts %llu vs %llu | "
        "wall %.2f ms vs %.2f ms | cores certified %zu\n\n",
        sweep_demo.big_delta, sweep_demo.big_r, sweep_demo.supports,
        sweep_demo.verdicts_match ? "match" : "DIVERGE",
        sweep_demo.incremental_clauses, sweep_demo.scratch_clauses,
        static_cast<unsigned long long>(sweep_demo.incremental_conflicts),
        static_cast<unsigned long long>(sweep_demo.scratch_conflicts),
        sweep_demo.incremental_wall_ms, sweep_demo.scratch_wall_ms,
        sweep_demo.cores_certified);
  }

  // E2g: the cross-step RE cache on the E2 sequence set, cold vs warm, plus
  // intra-run short-circuiting on a renamed fixed-point chain.
  CacheDemo cache_demo;
  {
    const auto problems = matching_lower_bound_sequence(4, 0, 1, 2);
    cache_demo.steps = problems.size() - 1;
    const auto run = [&](RECache* cache, REStats* stats) {
      REOptions options;
      options.max_configurations = 5'000'000;
      options.cache = cache;
      options.stats = stats;
      const auto t0 = std::chrono::steady_clock::now();
      const SequenceReport report = verify_lower_bound_sequence(problems, options);
      const double wall =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                    t0)
              .count();
      return std::pair<SequenceReport, double>{report, wall};
    };

    REStats off_stats;
    const auto [off, off_wall] = run(nullptr, &off_stats);
    cache_demo.off_wall_ms = off_wall;

    RECache cache;
    REStats cold_stats;
    const auto [cold, cold_wall] = run(&cache, &cold_stats);
    cache_demo.cold_wall_ms = cold_wall;
    cache_demo.cold_hits = cold_stats.cache_hits;
    cache_demo.cold_misses = cold_stats.cache_misses;

    REStats warm_stats;
    const auto [warm, warm_wall] = run(&cache, &warm_stats);
    cache_demo.warm_wall_ms = warm_wall;
    cache_demo.warm_hits = warm_stats.cache_hits;
    cache_demo.warm_misses = warm_stats.cache_misses;
    cache_demo.warm_dfs_nodes = warm_stats.dfs_nodes;
    cache_demo.warm_canonical_ms = warm_stats.canonical_ms;

    cache_demo.verdicts_match = off.to_string() == cold.to_string() &&
                                off.to_string() == warm.to_string();

    // Fixed-point chain: Π_4(3) (Lemma 5.4) repeated under label rotations;
    // every step after the first must short-circuit within one cold run.
    const Problem fp = make_coloring_problem(4, 3);
    std::vector<Problem> chain = {fp};
    for (std::size_t i = 1; i < 6; ++i) {
      std::vector<Label> rot(fp.alphabet_size());
      for (std::size_t l = 0; l < rot.size(); ++l) {
        rot[l] = static_cast<Label>((l + i) % rot.size());
      }
      chain.push_back(apply_renaming(fp, rot));
    }
    cache_demo.chain_steps = chain.size() - 1;
    RECache chain_cache;
    REStats chain_stats;
    REOptions chain_options;
    chain_options.cache = &chain_cache;
    chain_options.stats = &chain_stats;
    const SequenceReport chain_report =
        verify_lower_bound_sequence(chain, chain_options);
    cache_demo.chain_hits = chain_stats.cache_hits;
    for (const SequenceStepReport& step : chain_report.steps) {
      if (step.index > 1) cache_demo.chain_dfs_nodes_after_first += step.re_dfs_nodes;
    }

    std::printf(
        "E2g RE cache, matching sequence (Δ=4, k=2): wall off %.2f ms, "
        "cold %.2f ms, warm %.2f ms | cold hit/miss %llu/%llu, warm %llu/%llu "
        "(dfs_nodes=%llu, canon %.2f ms) | verdicts %s\n"
        "    fixed-point chain Π_4(3) x%zu: %llu intra-run hits, %llu dfs nodes "
        "after first step\n\n",
        cache_demo.off_wall_ms, cache_demo.cold_wall_ms, cache_demo.warm_wall_ms,
        static_cast<unsigned long long>(cache_demo.cold_hits),
        static_cast<unsigned long long>(cache_demo.cold_misses),
        static_cast<unsigned long long>(cache_demo.warm_hits),
        static_cast<unsigned long long>(cache_demo.warm_misses),
        static_cast<unsigned long long>(cache_demo.warm_dfs_nodes),
        cache_demo.warm_canonical_ms,
        cache_demo.verdicts_match ? "match" : "DIVERGE", cache_demo.chain_steps + 1,
        static_cast<unsigned long long>(cache_demo.chain_hits),
        static_cast<unsigned long long>(cache_demo.chain_dfs_nodes_after_first));
  }

  // E2h: certificate emission vs independent checking on the acceptance
  // instances (Δ'=3 matching sequence; C_3 lift-UNSAT for 2-coloring).
  CertDemo cert_demo;
  {
    const auto wall_since = [](std::chrono::steady_clock::time_point t0) {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
          .count();
    };

    const auto problems =
        matching_lower_bound_sequence(3, 0, 1, matching_sequence_length(3, 0, 1));
    REOptions options;
    options.max_configurations = 5'000'000;
    auto t0 = std::chrono::steady_clock::now();
    const auto seq_cert = cert::make_sequence_certificate(problems, options);
    cert_demo.sequence_emit_wall_ms = wall_since(t0);
    if (seq_cert) {
      cert_demo.sequence_steps = seq_cert->sequence.steps.size();
      t0 = std::chrono::steady_clock::now();
      const auto verdict = cert::check_certificate(*seq_cert);
      cert_demo.sequence_check_wall_ms = wall_since(t0);
      cert_demo.sequence_valid = verdict.status == cert::CertStatus::kValid;
    }

    const auto two_coloring = parse_problem("two_coloring", "A^2\nB^2", "A B");
    std::optional<cert::Certificate> lift_cert;
    if (two_coloring) {
      t0 = std::chrono::steady_clock::now();
      lift_cert = cert::make_lift_unsat_certificate(*two_coloring, 2, 2,
                                                    make_bipartite_cycle(3));
      cert_demo.lift_emit_wall_ms = wall_since(t0);
    }
    if (lift_cert) {
      cert_demo.lift_proof_steps = lift_cert->lift.proof.steps.size();
      t0 = std::chrono::steady_clock::now();
      const auto verdict = cert::check_certificate(*lift_cert);
      cert_demo.lift_check_wall_ms = wall_since(t0);
      cert_demo.lift_valid = verdict.status == cert::CertStatus::kValid;
    }

    // Round-trip both kinds through the on-disk container and recheck.
    cert_demo.roundtrip_valid = seq_cert.has_value() && lift_cert.has_value();
    const std::pair<const char*, const std::optional<cert::Certificate>&> files[] = {
        {"cert_demo_seq.cert", seq_cert}, {"cert_demo_lift.cert", lift_cert}};
    for (const auto& [path, emitted] : files) {
      if (!emitted) continue;
      std::string error;
      cert::Certificate reloaded;
      const bool ok = cert::save_certificate(*emitted, path, &error) &&
                      cert::load_certificate(path, &reloaded, &error) &&
                      cert::check_certificate(reloaded).status ==
                          cert::CertStatus::kValid;
      if (!ok) cert_demo.roundtrip_valid = false;
      std::error_code ec;
      const auto bytes = std::filesystem::file_size(path, ec);
      (path == files[0].first ? cert_demo.sequence_bytes : cert_demo.lift_bytes) =
          ec ? 0 : static_cast<std::size_t>(bytes);
    }

    std::printf(
        "E2h proof certificates: matching Δ'=3 sequence (%zu steps) emit %.2f ms, "
        "check %.2f ms, %zu bytes, %s | C_3 lift-unsat (%zu DRAT steps) emit "
        "%.2f ms, check %.2f ms, %zu bytes, %s | disk round-trip %s\n\n",
        cert_demo.sequence_steps, cert_demo.sequence_emit_wall_ms,
        cert_demo.sequence_check_wall_ms, cert_demo.sequence_bytes,
        cert_demo.sequence_valid ? "VALID" : "INVALID", cert_demo.lift_proof_steps,
        cert_demo.lift_emit_wall_ms, cert_demo.lift_check_wall_ms,
        cert_demo.lift_bytes, cert_demo.lift_valid ? "VALID" : "INVALID",
        cert_demo.roundtrip_valid ? "ok" : "BROKEN");
  }

  // E2i: CDCL inprocessing armed vs disarmed, on the ISSUE 6 acceptance
  // instance (lift_{3,1}(MM_3), 8 nested gadgets) and on a conflict-bearing
  // sweep (lift_{2,2}(MM_2), growing cycles).
  InprocessDemo inprocess_demo;
  {
    const auto measure = [](const char* tag, const Problem& pi,
                            std::size_t big_delta, std::size_t big_r,
                            std::span<const BipartiteGraph> supports) {
      InprocessRun run;
      run.big_delta = big_delta;
      run.big_r = big_r;
      run.supports = supports.size();
      LiftSweepOptions on;
      on.incremental = true;
      on.inprocessing = true;
      const LiftSweepResult a = run_lift_sweep(pi, big_delta, big_r, supports, on);
      LiftSweepOptions off;
      off.incremental = true;
      off.inprocessing = false;
      const LiftSweepResult b = run_lift_sweep(pi, big_delta, big_r, supports, off);
      run.verdicts_match = a.lift_materialized && b.lift_materialized &&
                           a.steps.size() == b.steps.size();
      for (std::size_t i = 0; run.verdicts_match && i < a.steps.size(); ++i) {
        run.verdicts_match = a.steps[i].verdict == b.steps[i].verdict &&
                             a.steps[i].verdict != Verdict::kExhausted;
      }
      run.conflicts_on = a.total_conflicts;
      run.conflicts_off = b.total_conflicts;
      run.propagations_on = a.total_propagations;
      run.propagations_off = b.total_propagations;
      run.wall_on_ms = a.total_wall_ms;
      run.wall_off_ms = b.total_wall_ms;
      run.stats = a.sat_stats;
      std::printf(
          "E2i inprocessing, lift_{%zu,%zu}(%s) over %zu supports: verdicts %s "
          "| conflicts %llu (on) vs %llu (off) | wall %.2f ms vs %.2f ms\n"
          "    passes: runs=%llu subsumed=%llu strengthened=%llu vivified=%llu "
          "probed=%llu failed=%llu eliminated=%llu substituted=%llu units=%llu\n",
          big_delta, big_r, tag, run.supports,
          run.verdicts_match ? "match" : "DIVERGE",
          static_cast<unsigned long long>(run.conflicts_on),
          static_cast<unsigned long long>(run.conflicts_off), run.wall_on_ms,
          run.wall_off_ms,
          static_cast<unsigned long long>(run.stats.inprocess_runs),
          static_cast<unsigned long long>(run.stats.subsumed_clauses),
          static_cast<unsigned long long>(run.stats.strengthened_clauses),
          static_cast<unsigned long long>(run.stats.vivified_clauses),
          static_cast<unsigned long long>(run.stats.probed_literals),
          static_cast<unsigned long long>(run.stats.failed_literals),
          static_cast<unsigned long long>(run.stats.eliminated_vars),
          static_cast<unsigned long long>(run.stats.substituted_vars),
          static_cast<unsigned long long>(run.stats.inprocess_units));
      return run;
    };
    const auto gadget_supports = make_gadget_supports(3, 1, 1, 8);
    inprocess_demo.gadgets = measure("MM_3", make_maximal_matching_problem(3), 3,
                                     1, gadget_supports);
    const auto cycle_supports = make_cycle_supports(2, 9);
    inprocess_demo.cycles = measure("MM_2", make_maximal_matching_problem(2), 2,
                                    2, cycle_supports);
    std::printf("\n");
  }

  // E2j: the lower-bound service under overload and injected faults — a
  // verdict phase, a burst that must shed at admission, a deliberately torn
  // checkpoint, then a second server instance that must recover from the
  // fallback generation and reproduce every verdict from its warm cache.
  ServeDemo serve_demo;
  {
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path dir = fs::temp_directory_path() / "slocal_bench_serve";
    fs::create_directories(dir, ec);
    const std::string problem_path = (dir / "two_coloring.txt").string();
    const std::string checkpoint_path = (dir / "re_cache.ckpt").string();
    fs::remove(checkpoint_path, ec);
    fs::remove(checkpoint_path + ".bak", ec);
    if (std::FILE* pf = std::fopen(problem_path.c_str(), "w")) {
      std::fputs("A^2\nB^2\n---\nA B\n", pf);
      std::fclose(pf);
    }

    // The verdict phase both runs replay; ids double as map keys.
    std::vector<std::string> phase_a;
    for (int repeat = 1; repeat <= 4; ++repeat) {
      phase_a.push_back("req seq" + std::to_string(repeat) + " sequence " +
                        problem_path + " repeat=" + std::to_string(repeat));
    }
    phase_a.push_back("req swp4 sweep " + problem_path + " 2 2 cycles:2..4");
    phase_a.push_back("req swp5 sweep " + problem_path + " 2 2 cycles:2..5");

    // Pulls the verdict= (or per-support verdicts=) token out of an ok line,
    // dropping the consumption counters that legitimately differ between a
    // cold and a warm run.
    const auto verdict_token = [](const std::string& line) -> std::string {
      std::size_t pos = line.find(" verdicts=");
      if (pos == std::string::npos) pos = line.find(" verdict=");
      if (pos == std::string::npos) return "";
      ++pos;
      const std::size_t end = line.find(' ', pos);
      return line.substr(pos,
                         end == std::string::npos ? std::string::npos : end - pos);
    };

    const auto run_phase_a = [&](serve::Server& server,
                                 std::map<std::string, std::string>* verdicts) {
      server.set_response_sink([&, verdicts](const std::string& line) {
        if (line.rfind("resp ", 0) != 0) return;  // control replies
        const std::size_t id_end = line.find(' ', 5);
        if (id_end == std::string::npos) return;
        if (line.compare(id_end + 1, 3, "ok ") == 0) {
          (*verdicts)[line.substr(5, id_end - 5)] = verdict_token(line);
        }
      });
      for (const std::string& request : phase_a) {
        server.handle_line(request);
        server.drain();  // serial: keeps the fault-plan ordinals deterministic
      }
    };

    std::map<std::string, std::string> verdicts_run1;
    const auto serve_t0 = std::chrono::steady_clock::now();
    {
      serve::ServeOptions options;
      options.workers = 2;
      options.queue_capacity = 4;
      options.retry_after_ms = 5.0;
      options.checkpoint_path = checkpoint_path;
      std::string fault_error;
      // Write #2 is torn; every admitted request from #7 on wedges for 60 ms.
      options.faults = *serve::ServeFaultPlan::parse(
          "fail-checkpoint=2,delay-request=7/1:60", &fault_error);
      serve::Server server(options);
      run_phase_a(server, &verdicts_run1);
      // Only the replayed phase is compared across runs; the burst's own
      // responses (a mix of ok and admission rejects) are just counted.
      server.set_response_sink([](const std::string&) {});
      server.handle_line("checkpoint");  // write #1: clean primary generation

      // Overload burst: the wedged workers saturate the queue in the first
      // few sends, so the rest must bounce at admission, not pile up.
      for (int i = 0; i < 20; ++i) {
        server.handle_line("req burst" + std::to_string(i) + " sequence " +
                           problem_path + " repeat=1");
      }
      server.drain();
      server.handle_line("checkpoint");  // write #2: torn by the fault plan

      const serve::ServeCounters counters = server.counters();
      serve_demo.requests = phase_a.size() + 20;
      serve_demo.ok = counters.ok;
      serve_demo.admission_rejects = counters.admission_rejects;
      serve_demo.checkpoint_failures = counters.checkpoint_failures;
    }
    serve_demo.wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - serve_t0)
                             .count();
    serve_demo.requests_per_sec =
        serve_demo.wall_ms > 0.0 ? static_cast<double>(serve_demo.requests) /
                                       (serve_demo.wall_ms / 1000.0)
                                 : 0.0;

    std::map<std::string, std::string> verdicts_run2;
    {
      serve::ServeOptions options;
      options.workers = 2;
      options.queue_capacity = 4;
      options.checkpoint_path = checkpoint_path;
      serve::Server server(options);
      serve_demo.recovered_from =
          serve::CheckpointManager::to_string(server.recovery());
      const bool recovered =
          server.recovery() == serve::CheckpointManager::Recovery::kPrimary ||
          server.recovery() == serve::CheckpointManager::Recovery::kFallback;
      serve_demo.checkpoint_recoveries = recovered ? 1 : 0;
      run_phase_a(server, &verdicts_run2);
      serve_demo.warm_cache_hits = server.cache_counters().hits;
      std::string flush_error;
      server.flush_checkpoint(&flush_error);
    }
    serve_demo.verdicts_match =
        !verdicts_run1.empty() && verdicts_run1 == verdicts_run2;
    {
      RECache final_cache;
      serve_demo.final_checkpoint_valid = final_cache.load(checkpoint_path);
    }
    std::printf(
        "E2j serve, %zu requests @ %.0f req/s: ok=%llu rejects=%llu "
        "torn_checkpoints=%llu | restart recovered=%s verdicts %s | warm hits=%llu "
        "final checkpoint %s\n\n",
        serve_demo.requests, serve_demo.requests_per_sec,
        static_cast<unsigned long long>(serve_demo.ok),
        static_cast<unsigned long long>(serve_demo.admission_rejects),
        static_cast<unsigned long long>(serve_demo.checkpoint_failures),
        serve_demo.recovered_from.c_str(),
        serve_demo.verdicts_match ? "match" : "DIVERGE",
        static_cast<unsigned long long>(serve_demo.warm_cache_hits),
        serve_demo.final_checkpoint_valid ? "valid" : "TORN");

    // Socket phase: the same sweep workload, batched vs unbatched. Eight
    // clients ask for overlapping cycle ranges on the same problem — same
    // canonical fingerprint, same (Δ, r), same family kind — so the batcher
    // must fold all of them into one sweep-group dispatch. The reference run
    // pushes the identical requests through a plain server one at a time
    // (8 single dispatches); the socket run must reproduce its verdicts
    // exactly despite answering them from one shared encoding.
    constexpr std::size_t kSocketClients = 8;
    std::vector<std::string> socket_requests;
    for (std::size_t i = 0; i < kSocketClients; ++i) {
      socket_requests.push_back(
          "req sock" + std::to_string(i) + " sweep " + problem_path + " 2 2 " +
          (i % 2 == 0 ? "cycles:2..4" : "cycles:3..5"));
    }

    std::map<std::string, std::string> verdicts_plain;
    {
      serve::ServeOptions options;
      options.workers = 2;
      serve::Server server(options);
      server.set_response_sink([&](const std::string& line) {
        if (line.rfind("resp sock", 0) != 0) return;
        const std::size_t id_end = line.find(' ', 5);
        if (id_end == std::string::npos) return;
        if (line.compare(id_end + 1, 3, "ok ") == 0) {
          verdicts_plain[line.substr(5, id_end - 5)] = verdict_token(line);
        }
      });
      for (const std::string& request : socket_requests) {
        server.handle_line(request);
      }
      server.drain();
      // No batcher here, so every ok sweep was one full solver dispatch.
      serve_demo.unbatched_dispatches = server.counters().ok;
    }

    std::map<std::string, std::string> verdicts_socket;
    {
      serve::ServeOptions options;
      options.workers = 2;
      options.queue_capacity = 2 * kSocketClients;
      serve::Server server(options);
      net::SweepBatcherOptions batch_options;
      batch_options.window_ms = 250;  // every client sends well inside this
      net::SweepBatcher batcher(server, batch_options);
      batcher.attach();
      net::TcpServerOptions tcp_options;
      net::TcpServer tcp(server, tcp_options);
      std::string error;
      if (!tcp.start(&error)) {
        std::fprintf(stderr, "E2j socket: %s\n", error.c_str());
      } else {
        std::thread runner([&tcp] { tcp.run(); });
        const auto socket_t0 = std::chrono::steady_clock::now();
        std::mutex verdicts_mutex;
        std::vector<std::thread> clients;
        for (std::size_t i = 0; i < kSocketClients; ++i) {
          clients.emplace_back([&, i] {
            net::ClientOptions client_options;
            client_options.port = tcp.port();
            net::Client client;
            std::string client_error;
            if (!client.connect(client_options, &client_error)) return;
            const auto response =
                client.request(socket_requests[i], &client_error);
            if (!response) return;
            const std::string token = verdict_token(*response);
            if (token.empty()) return;
            const std::lock_guard<std::mutex> lock(verdicts_mutex);
            verdicts_socket["sock" + std::to_string(i)] = token;
          });
        }
        for (std::thread& t : clients) t.join();
        serve_demo.socket_wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - socket_t0)
                .count();
        tcp.stop();
        runner.join();
        const serve::ServeCounters counters = server.counters();
        serve_demo.socket_connections = kSocketClients;
        serve_demo.socket_requests = socket_requests.size();
        serve_demo.socket_batch_groups = counters.sweep_batch_groups;
        serve_demo.socket_batched_requests = counters.sweep_batch_requests;
        serve_demo.socket_batch_peak = counters.sweep_batch_peak;
        serve_demo.socket_single_dispatch = counters.sweep_single_dispatch;
        serve_demo.socket_requests_per_sec =
            serve_demo.socket_wall_ms > 0.0
                ? static_cast<double>(serve_demo.socket_requests) /
                      (serve_demo.socket_wall_ms / 1000.0)
                : 0.0;
      }
    }
    serve_demo.socket_verdicts_match =
        !verdicts_plain.empty() && verdicts_plain == verdicts_socket;
    std::printf(
        "E2j socket, %zu clients x 1 sweep @ %.0f req/s: batch groups=%llu "
        "batched=%llu peak=%llu single=%llu (unbatched reference: %llu "
        "dispatches) | verdicts %s\n\n",
        serve_demo.socket_connections, serve_demo.socket_requests_per_sec,
        static_cast<unsigned long long>(serve_demo.socket_batch_groups),
        static_cast<unsigned long long>(serve_demo.socket_batched_requests),
        static_cast<unsigned long long>(serve_demo.socket_batch_peak),
        static_cast<unsigned long long>(serve_demo.socket_single_dispatch),
        static_cast<unsigned long long>(serve_demo.unbatched_dispatches),
        serve_demo.socket_verdicts_match ? "match" : "DIVERGE");
  }

  // E2k: the automatic discovery driver on the two rediscovery workloads.
  // Each family runs with threads=1 and threads=4; the determinism contract
  // says the discovery log and the certificate bytes must agree exactly.
  DiscoverDemo discover_demo;
  {
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path dir = fs::temp_directory_path() / "slocal_bench_discover";
    fs::create_directories(dir, ec);

    ParseError parse_error;
    const auto two_coloring = parse_problem_text(
        "two_coloring", "A^2\nB^2\n---\nA B\n", &parse_error);
    const std::vector<Problem> coloring_family{*two_coloring};
    const std::vector<Problem> matching_family{make_matching_problem(3, 0, 1),
                                               make_matching_problem(3, 1, 1)};

    bool certs_valid = true;
    bool invariant = true;
    const auto read_bytes = [](const std::string& path) {
      std::string bytes;
      if (std::FILE* bf = std::fopen(path.c_str(), "rb")) {
        char buf[4096];
        std::size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof(buf), bf)) > 0) bytes.append(buf, n);
        std::fclose(bf);
      }
      return bytes;
    };
    const auto measure = [&](const char* tag, const std::vector<Problem>& family,
                             std::size_t target) {
      DiscoverRun run;
      run.target = target;
      std::string log_t1, cert_t1;
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        discover::DiscoverOptions options;
        options.target_length = target;
        options.threads = threads;
        const auto t0 = std::chrono::steady_clock::now();
        const discover::DiscoverResult result =
            discover::run_discovery(family, options);
        const double wall_ms = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
        std::string cert_bytes;
        for (const discover::Discovery& find : result.found) {
          const cert::CertCheckResult check = cert::check_certificate(find.certificate);
          certs_valid = certs_valid && check.status == cert::CertStatus::kValid;
          const std::string path = (dir / (std::string(tag) + ".cert")).string();
          std::string error;
          if (cert::save_certificate(find.certificate, path, &error)) {
            cert_bytes += read_bytes(path);
          } else {
            certs_valid = false;
          }
        }
        certs_valid = certs_valid && !result.found.empty();
        if (threads == 1) {
          log_t1 = result.log;
          cert_t1 = cert_bytes;
          run.status = discover::to_string(result.status);
          run.pumped = !result.found.empty() && result.found.front().pumped;
          run.expansions = result.stats.expansions;
          run.frontier_peak = result.stats.frontier_peak;
          run.nodes = result.stats.nodes_spent;
          run.cache_hits = result.stats.cache_hits;
          run.cache_misses = result.stats.cache_misses;
          run.certs_emitted = result.stats.certs_emitted;
          run.cert_bytes = cert_bytes.size();
          run.wall_ms = wall_ms;
        } else {
          invariant = invariant && result.log == log_t1 && cert_bytes == cert_t1;
        }
      }
      return run;
    };
    discover_demo.coloring = measure("coloring", coloring_family, 3);
    discover_demo.matching = measure("matching", matching_family, 1);
    discover_demo.certs_valid = certs_valid;
    discover_demo.thread_invariance = invariant;
    std::printf(
        "E2k discover: coloring %s (pumped=%d, %llu expansions, %llu nodes, "
        "%.2f ms) | matching %s (%llu expansions, %llu nodes, %.2f ms) | "
        "certs %s | threads 1 vs 4 %s\n\n",
        discover_demo.coloring.status.c_str(), discover_demo.coloring.pumped ? 1 : 0,
        static_cast<unsigned long long>(discover_demo.coloring.expansions),
        static_cast<unsigned long long>(discover_demo.coloring.nodes),
        discover_demo.coloring.wall_ms, discover_demo.matching.status.c_str(),
        static_cast<unsigned long long>(discover_demo.matching.expansions),
        static_cast<unsigned long long>(discover_demo.matching.nodes),
        discover_demo.matching.wall_ms,
        discover_demo.certs_valid ? "valid" : "INVALID",
        discover_demo.thread_invariance ? "identical" : "DIVERGE");
  }

  write_json(rows, totals, table_wall_ms, serial_table_wall_ms, budget_demo,
             portfolio_demo, sweep_demo, cache_demo, cert_demo, inprocess_demo,
             serve_demo, discover_demo);
}

void BM_re_matching(benchmark::State& state) {
  const std::size_t delta = static_cast<std::size_t>(state.range(0));
  const Problem pi = make_matching_problem(delta, 0, 1);
  REOptions options;
  options.max_configurations = 10'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(round_eliminate(pi, options));
  }
}
BENCHMARK(BM_re_matching)->Arg(3)->Arg(4)->Arg(5)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_re_matching_serial(benchmark::State& state) {
  const std::size_t delta = static_cast<std::size_t>(state.range(0));
  const Problem pi = make_matching_problem(delta, 0, 1);
  REOptions options;
  options.max_configurations = 10'000'000;
  options.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(round_eliminate(pi, options));
  }
}
BENCHMARK(BM_re_matching_serial)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_re_coloring_fixed_point(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const Problem pi = make_coloring_problem(4, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_fixed_point(pi));
  }
}
BENCHMARK(BM_re_coloring_fixed_point)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_re_half_step(benchmark::State& state) {
  const std::size_t delta = static_cast<std::size_t>(state.range(0));
  const Problem so = make_sinkless_orientation_problem(delta);
  for (auto _ : state) {
    benchmark::DoNotOptimize(apply_R(so));
  }
}
BENCHMARK(BM_re_half_step)->Arg(3)->Arg(6)->Arg(9)->Unit(benchmark::kMicrosecond);

void BM_sequence_verification(benchmark::State& state) {
  const auto problems = matching_lower_bound_sequence(4, 0, 1, 2);
  REOptions options;
  options.max_configurations = 5'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_lower_bound_sequence(problems, options));
  }
}
BENCHMARK(BM_sequence_verification)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace slocal

int main(int argc, char** argv) {
  slocal::print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
