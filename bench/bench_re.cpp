// Experiment E2 — the round elimination engine: Lemma 4.5 steps, Lemma 5.4
// fixed points, and engine scaling in Δ and |Σ|.
//
// Prints the per-step verification table (RE alphabet/constraint sizes and
// whether the relaxation witness was found) that underlies Corollary 4.6's
// lower-bound sequences; then times RE itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/formalism/relaxation.hpp"
#include "src/problems/classic.hpp"
#include "src/problems/coloring_family.hpp"
#include "src/problems/matching_family.hpp"
#include "src/re/round_elimination.hpp"
#include "src/re/sequence.hpp"

namespace slocal {
namespace {

void print_table() {
  std::printf(
      "\nE2  round elimination steps (Lemma 4.5: Π_Δ(x+y,y) relaxes RE(Π_Δ(x,y)))\n"
      "%3s %3s %3s | %8s %6s %6s | %10s\n",
      "Δ", "x", "y", "|Σ(RE)|", "|W|", "|B|", "relaxation");
  REOptions options;
  options.max_configurations = 5'000'000;
  for (const auto [delta, x, y] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{4, 0, 1},
        {4, 1, 1},
        {4, 2, 1},
        {5, 0, 1},
        {5, 1, 1},
        {5, 1, 2}}) {
    const Problem pi = make_matching_problem(delta, x, y);
    const auto re = round_eliminate(pi, options);
    if (!re) {
      std::printf("%3zu %3zu %3zu | (resource cap exceeded)\n", delta, x, y);
      continue;
    }
    const Problem relaxed = make_matching_problem(delta, x + y, y);
    const bool ok = relaxation_label_map(*re, relaxed).has_value() ||
                    find_relaxation(*re, relaxed, 20'000'000).has_value();
    std::printf("%3zu %3zu %3zu | %8zu %6zu %6zu | %10s\n", delta, x, y,
                re->alphabet_size(), re->white().size(), re->black().size(),
                ok ? "verified" : "MISSING");
  }

  std::printf(
      "\nE2b fixed points (Lemma 5.4: RE(Π_Δ(k)) = Π_Δ(k) for k <= Δ)\n"
      "%3s %3s | %11s\n",
      "Δ", "k", "fixed point");
  for (const auto [delta, k] : {std::pair<std::size_t, std::size_t>{3, 2},
                                {4, 2},
                                {3, 3},
                                {4, 3},
                                {5, 2}}) {
    const Problem pi = make_coloring_problem(delta, k);
    std::printf("%3zu %3zu | %11s\n", delta, k,
                is_fixed_point(pi) ? "yes" : "NO");
  }

  std::printf(
      "\nE2c sinkless orientation chain: RE(SO) = SO' and RE(SO') = SO'\n");
  for (const std::size_t delta : {3u, 4u, 5u}) {
    const Problem so = make_sinkless_orientation_problem(delta);
    const auto so_prime = round_eliminate(so);
    std::printf("  Δ=%zu: RE(SO) computed=%s, SO' fixed point=%s\n", delta,
                so_prime ? "yes" : "no",
                so_prime && is_fixed_point(*so_prime) ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_re_matching(benchmark::State& state) {
  const std::size_t delta = static_cast<std::size_t>(state.range(0));
  const Problem pi = make_matching_problem(delta, 0, 1);
  REOptions options;
  options.max_configurations = 10'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(round_eliminate(pi, options));
  }
}
BENCHMARK(BM_re_matching)->Arg(3)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_re_coloring_fixed_point(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const Problem pi = make_coloring_problem(4, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_fixed_point(pi));
  }
}
BENCHMARK(BM_re_coloring_fixed_point)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_re_half_step(benchmark::State& state) {
  const std::size_t delta = static_cast<std::size_t>(state.range(0));
  const Problem so = make_sinkless_orientation_problem(delta);
  for (auto _ : state) {
    benchmark::DoNotOptimize(apply_R(so));
  }
}
BENCHMARK(BM_re_half_step)->Arg(3)->Arg(6)->Arg(9)->Unit(benchmark::kMicrosecond);

void BM_sequence_verification(benchmark::State& state) {
  const auto problems = matching_lower_bound_sequence(4, 0, 1, 2);
  REOptions options;
  options.max_configurations = 5'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_lower_bound_sequence(problems, options));
  }
}
BENCHMARK(BM_sequence_verification)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace slocal

int main(int argc, char** argv) {
  slocal::print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
