// Experiment E4 — Theorem 6.1 / 1.7: α-arbdefective c-colored β-ruling sets.
//
// Table 1: the Π_Δ(c,β) family — alphabet sizes and the Figure 2 diagram
// relations. Table 2: the lower-bound formula sweep over β. Table 3: the
// Supported (2,β)-ruling-set algorithm's measured rounds (UB shape ~ χ_G·β).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/bounds/formulas.hpp"
#include "src/formalism/diagram.hpp"
#include "src/graph/generators.hpp"
#include "src/problems/rulingset_family.hpp"
#include "src/problems/verifiers.hpp"
#include "src/sim/algorithms.hpp"
#include "src/sim/network.hpp"
#include "src/util/rng.hpp"

namespace slocal {
namespace {

void print_tables() {
  std::printf(
      "\nE4a Π_Δ(c,β) family (Definition 6.2) and Figure 2 diagram relations\n"
      "%3s %3s %3s | %5s %6s %6s | %18s\n",
      "Δ", "c", "β", "|Σ|", "|W|", "|B|", "P_β>=P_i, U_β>=P_i");
  for (const auto [delta, c, beta] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{4, 2, 1},
        {4, 2, 2},
        {4, 3, 2},
        {5, 2, 3}}) {
    const Problem pi = make_rulingset_problem(delta, c, beta);
    const Diagram d(pi.black(), pi.alphabet_size());
    bool relations = true;
    for (std::size_t i = 1; i < beta; ++i) {
      relations = relations &&
                  d.at_least_as_strong(*pointer_label(pi, beta), *pointer_label(pi, i)) &&
                  d.at_least_as_strong(*up_label(pi, beta), *pointer_label(pi, i));
    }
    relations = relations &&
                d.at_least_as_strong(*up_label(pi, beta), *pointer_label(pi, beta));
    std::printf("%3zu %3zu %3zu | %5zu %6zu %6zu | %18s\n", delta, c, beta,
                pi.alphabet_size(), pi.white().size(), pi.black().size(),
                relations ? "verified" : "VIOLATED");
  }

  std::printf(
      "\nE4b lower-bound formula sweep (Theorem 6.1, n = 1e9, Δ = Δ'logΔ')\n"
      "%4s %3s %3s %3s | %8s | %10s %10s | %10s\n",
      "Δ'", "α", "c", "β", "Δ̄", "LB det", "LB rand", "UB (known)");
  for (const std::size_t beta : {1u, 2u, 3u}) {
    for (const std::size_t delta_prime : {64u, 256u, 1024u}) {
      const std::size_t delta = delta_prime * 10;
      const auto b = rulingset_lower_bound(0, 1, beta, delta_prime, delta, 1e9);
      std::printf("%4zu %3u %3u %3zu | %8.1f | %10.2f %10.2f | %10.2f\n",
                  delta_prime, 0, 1, beta, b.delta_bar, b.det_rounds,
                  b.rand_rounds, b.upper_rounds);
    }
  }

  std::printf(
      "\nE4c Supported (2,β)-ruling set: measured rounds (UB shape χ_G·β)\n"
      "%5s %3s %3s | %6s %6s | %6s\n",
      "n", "Δ", "β", "valid", "isMIS", "rounds");
  for (const std::size_t beta : {1u, 2u, 3u}) {
    Rng rng(31 + beta);
    const auto g = random_regular(60, 4, rng);
    if (!g) continue;
    const std::vector<bool> input(g->edge_count(), true);
    Network net(*g, input);
    BetaRulingSet alg(beta);
    const auto result = net.run(alg, 4000);
    const bool valid = is_beta_ruling_set(*g, alg.in_set(), beta);
    const bool mis = beta == 1 && is_mis(*g, alg.in_set());
    std::printf("%5u %3u %3zu | %6s %6s | %6zu\n", 60, 4, beta,
                valid ? "yes" : "NO", beta == 1 ? (mis ? "yes" : "NO") : "-",
                result.rounds);
  }
  std::printf("\n");
}

void BM_build_rulingset_problem(benchmark::State& state) {
  const std::size_t beta = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_rulingset_problem(5, 3, beta));
  }
}
BENCHMARK(BM_build_rulingset_problem)->Arg(1)->Arg(3)->Arg(6);

void BM_rulingset_diagram(benchmark::State& state) {
  const Problem pi = make_rulingset_problem(4, 3, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Diagram(pi.black(), pi.alphabet_size()));
  }
}
BENCHMARK(BM_rulingset_diagram)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_beta_ruling_set_run(benchmark::State& state) {
  const std::size_t beta = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const auto g = random_regular(80, 4, rng);
  const std::vector<bool> input(g->edge_count(), true);
  for (auto _ : state) {
    Network net(*g, input);
    BetaRulingSet alg(beta);
    benchmark::DoNotOptimize(net.run(alg, 4000));
  }
}
BENCHMARK(BM_beta_ruling_set_run)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace slocal

int main(int argc, char** argv) {
  slocal::print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
