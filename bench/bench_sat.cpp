// Solver substrate benchmarks: the CDCL core and the two labeling deciders
// (backtracking vs CNF) on graph instances of growing size — the practical
// limits of the "does lift(Π) admit a solution on G?" question.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/graph/generators.hpp"
#include "src/problems/classic.hpp"
#include "src/sat/solver.hpp"
#include "src/solver/cnf_encoding.hpp"
#include "src/solver/edge_labeling.hpp"
#include "src/util/rng.hpp"

namespace slocal {
namespace {

void print_header() {
  std::printf("\nSolver substrate: CDCL SAT + labeling deciders\n\n");
}

void BM_pigeonhole(benchmark::State& state) {
  const std::size_t holes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    SatSolver s;
    const std::size_t pigeons = holes + 1;
    std::vector<std::vector<Var>> x(pigeons, std::vector<Var>(holes));
    for (auto& row : x) {
      for (auto& var : row) var = s.new_var();
    }
    for (std::size_t p = 0; p < pigeons; ++p) {
      std::vector<Lit> clause;
      for (std::size_t h = 0; h < holes; ++h) clause.push_back(Lit::positive(x[p][h]));
      s.add_clause(clause);
    }
    for (std::size_t h = 0; h < holes; ++h) {
      for (std::size_t p1 = 0; p1 < pigeons; ++p1) {
        for (std::size_t p2 = p1 + 1; p2 < pigeons; ++p2) {
          s.add_clause({Lit::negative(x[p1][h]), Lit::negative(x[p2][h])});
        }
      }
    }
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_pigeonhole)->Arg(5)->Arg(6)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_random_3sat(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(77);
  for (auto _ : state) {
    SatSolver s;
    std::vector<Var> vars;
    for (std::size_t v = 0; v < n; ++v) vars.push_back(s.new_var());
    const std::size_t m = static_cast<std::size_t>(4.0 * static_cast<double>(n));
    for (std::size_t c = 0; c < m; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k) {
        const Var v = vars[rng.below(n)];
        clause.push_back(rng.chance(0.5) ? Lit::positive(v) : Lit::negative(v));
      }
      s.add_clause(clause);
    }
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_random_3sat)->Arg(50)->Arg(100)->Arg(150)->Unit(benchmark::kMillisecond);

void BM_incremental_3sat_chunks(benchmark::State& state) {
  // The sweep-shaped workload: one accumulating solver, clauses arriving in
  // chunks with a solve after each, inprocessing armed or disarmed by the
  // second arg. Every variable is frozen at creation — chunks may reference
  // any variable later, exactly the contract the incremental labeling sweep
  // lives under — so the win here comes from the clause-level passes
  // (subsumption, self-subsumption, vivification, probing).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Rng rng(99);
    SatSolver s;
    s.set_inprocessing(state.range(1) != 0);
    std::vector<Var> vars;
    for (std::size_t v = 0; v < n; ++v) {
      vars.push_back(s.new_var());
      s.freeze(vars.back());
    }
    const std::size_t m = static_cast<std::size_t>(3.6 * static_cast<double>(n));
    const std::size_t chunks = 6;
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      for (std::size_t c = 0; c < m / chunks; ++c) {
        std::vector<Lit> clause;
        for (int k = 0; k < 3; ++k) {
          const Var v = vars[rng.below(n)];
          clause.push_back(rng.chance(0.5) ? Lit::positive(v) : Lit::negative(v));
        }
        s.add_clause(clause);
      }
      benchmark::DoNotOptimize(s.solve());
    }
  }
}
BENCHMARK(BM_incremental_3sat_chunks)
    ->Args({120, 1})
    ->Args({120, 0})
    ->Args({160, 1})
    ->Args({160, 0})
    ->ArgNames({"vars", "inprocess"})
    ->Unit(benchmark::kMillisecond);

void BM_labeling_backtracking(benchmark::State& state) {
  const std::size_t half = static_cast<std::size_t>(state.range(0));
  const BipartiteGraph g = make_bipartite_cycle(half);
  const Problem mm = make_maximal_matching_problem(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_bipartite_labeling(g, mm));
  }
}
BENCHMARK(BM_labeling_backtracking)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_labeling_sat(benchmark::State& state) {
  const std::size_t half = static_cast<std::size_t>(state.range(0));
  const BipartiteGraph g = make_bipartite_cycle(half);
  const Problem mm = make_maximal_matching_problem(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_bipartite_labeling_sat(g, mm));
  }
}
BENCHMARK(BM_labeling_sat)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_labeling_sat_regular_support(benchmark::State& state) {
  Rng rng(5);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto base = random_regular(n, 3, rng);
  const Problem so = make_sinkless_orientation_problem(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_graph_halfedge_labeling_sat(*base, so));
  }
}
BENCHMARK(BM_labeling_sat_regular_support)->Arg(12)->Arg(24)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace slocal

int main(int argc, char** argv) {
  slocal::print_header();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
