// Experiment E8 — the Lemma 2.1 substrate: generated Δ-regular graphs vs
// the lemma's girth and independence guarantees.
//
// girth(G) should track ε·log_Δ(n) and α(G) should track α·n·logΔ/Δ; the
// table reports measured values next to the reference curves.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"
#include "src/graph/transforms.hpp"
#include "src/util/rng.hpp"

namespace slocal {
namespace {

void print_table() {
  std::printf(
      "\nE8  Lemma 2.1 substitute: random Δ-regular graphs (best-of-k + swaps)\n"
      "%6s %3s | %6s %10s | %8s %12s | %9s\n",
      "n", "Δ", "girth", "log_Δ(n)", "α(G)", "n·logΔ/Δ", "χ >= n/α");
  Rng rng(20240706);
  for (const auto [n, delta] : {std::pair<std::size_t, std::size_t>{50, 4},
                                {100, 4},
                                {200, 4},
                                {100, 6},
                                {200, 6},
                                {100, 8}}) {
    const auto g = random_regular_high_girth(n, delta, rng, 6);
    if (!g) continue;
    const auto gg = girth(*g);
    const auto alpha_exact = independence_number_exact(*g, 80'000'000);
    const std::size_t alpha =
        alpha_exact ? *alpha_exact : independence_number_greedy(*g);
    const double logd_n = std::log2(static_cast<double>(n)) /
                          std::log2(static_cast<double>(delta));
    const double alon = static_cast<double>(n) *
                        std::log2(static_cast<double>(delta)) /
                        static_cast<double>(delta);
    std::printf("%6zu %3zu | %6zu %10.2f | %7zu%s %12.1f | %9zu\n", n, delta,
                gg.value_or(0), logd_n, alpha, alpha_exact ? " " : "~",
                alon, chromatic_lower_bound_from_independence(n, alpha));
  }
  std::printf("  (~ marks greedy lower bound where exact search exceeded budget)\n\n");
}

void BM_random_regular(benchmark::State& state) {
  Rng rng(1);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_regular(n, 4, rng));
  }
}
BENCHMARK(BM_random_regular)->Arg(100)->Arg(400)->Arg(1600)->Unit(benchmark::kMicrosecond);

void BM_girth(benchmark::State& state) {
  Rng rng(2);
  const auto g = random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(girth(*g));
  }
}
BENCHMARK(BM_girth)->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);

void BM_independence_greedy(benchmark::State& state) {
  Rng rng(3);
  const auto g = random_regular(static_cast<std::size_t>(state.range(0)), 6, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(independence_number_greedy(*g));
  }
}
BENCHMARK(BM_independence_greedy)->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);

void BM_double_cover(benchmark::State& state) {
  Rng rng(4);
  const auto g = random_regular(static_cast<std::size_t>(state.range(0)), 6, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bipartite_double_cover(*g));
  }
}
BENCHMARK(BM_double_cover)->Arg(200)->Arg(800)->Unit(benchmark::kMicrosecond);

void BM_linear_hypergraph(benchmark::State& state) {
  Rng rng(5);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_regular_linear_hypergraph(n, 2, 3, rng));
  }
}
BENCHMARK(BM_linear_hypergraph)->Arg(30)->Arg(90)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace slocal

int main(int argc, char** argv) {
  slocal::print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
