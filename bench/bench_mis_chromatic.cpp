// Experiment E9 — the [AAPR23] open question, resolved by Theorem 1.7:
// MIS in Supported LOCAL is solvable in χ_G rounds and (deterministically)
// no better in general.
//
// Table 1: measured rounds of the χ-class algorithm vs the plain-LOCAL
// greedy baseline (the gap Supported preprocessing buys). Table 2: the
// Theorem 1.7 numeric instantiation Δ' = log n/loglog n, Δ = Δ'logΔ'
// showing LB = Ω(log n / loglog n) against χ_G = Θ(Δ/logΔ).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/bounds/formulas.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"
#include "src/problems/verifiers.hpp"
#include "src/sim/algorithms.hpp"
#include "src/sim/network.hpp"
#include "src/sim/supported.hpp"
#include "src/util/rng.hpp"

namespace slocal {
namespace {

void print_tables() {
  std::printf(
      "\nE9a MIS rounds: Supported χ-class algorithm vs LOCAL greedy-by-uid\n"
      "%18s %5s %3s | %10s %10s %10s | %6s\n",
      "support", "n", "Δ", "supported", "greedy", "luby(rand)", "χ_g");
  struct Case {
    const char* name;
    Graph graph;
  };
  Rng rng(606);
  std::vector<Case> cases;
  cases.push_back({"path (sorted ids)", make_path(120)});
  cases.push_back({"cycle", make_cycle(121)});
  if (auto g = random_regular(120, 4, rng)) cases.push_back({"random 4-regular", *g});
  if (auto g = random_regular(120, 8, rng)) cases.push_back({"random 8-regular", *g});
  for (auto& [name, graph] : cases) {
    const std::vector<bool> input(graph.edge_count(), true);
    Network supported(graph, input);
    ColorClassMis fast;
    const auto fast_result = supported.run(fast);
    const bool fast_ok = is_mis(graph, fast.in_mis());

    Network plain(graph);
    GreedyUidMis slow;
    const auto slow_result = plain.run(slow, 20'000);
    const bool slow_ok = is_mis(graph, slow.in_mis());

    Network plain2(graph);
    LubyMis luby(2024);
    const auto luby_result = plain2.run(luby, 20'000);
    const bool luby_ok = is_mis(graph, luby.in_mis());

    std::vector<std::uint64_t> uids(graph.node_count());
    for (std::size_t i = 0; i < uids.size(); ++i) uids[i] = i + 1;
    const std::size_t chi = color_count(canonical_greedy_coloring(graph, uids));
    std::printf("%18s %5zu %3zu | %9zu%s %9zu%s %9zu%s | %6zu\n", name,
                graph.node_count(), graph.max_degree(), fast_result.rounds,
                fast_ok ? " " : "!", slow_result.rounds, slow_ok ? " " : "!",
                luby_result.rounds, luby_ok ? " " : "!", chi);
  }

  std::printf(
      "\nE9b Theorem 1.7 instantiation (Δ' = log n/loglog n, Δ = Δ'·logΔ'):\n"
      "%10s | %8s %8s | %14s %14s\n",
      "n", "Δ'", "Δ", "LB Ω(lg/lglg)", "UB χ=Θ(Δ/lgΔ)");
  for (const double n : {1e6, 1e9, 1e12, 1e15, 1e18}) {
    const auto inst = mis_chromatic_instance(n);
    std::printf("%10.0e | %8.1f %8.1f | %14.2f %14.2f\n", n, inst.delta_prime,
                inst.delta, inst.lower_bound, inst.chromatic_bound);
  }
  std::printf("  => the χ_G-round algorithm is optimal up to constants: the\n"
              "     [AAPR23] open question is answered negatively.\n\n");
}

void BM_color_class_mis(benchmark::State& state) {
  Rng rng(1);
  const auto g = random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
  const std::vector<bool> input(g->edge_count(), true);
  for (auto _ : state) {
    Network net(*g, input);
    ColorClassMis alg;
    benchmark::DoNotOptimize(net.run(alg));
  }
}
BENCHMARK(BM_color_class_mis)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_greedy_uid_mis(benchmark::State& state) {
  Rng rng(2);
  const auto g = random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
  for (auto _ : state) {
    Network net(*g);
    GreedyUidMis alg;
    benchmark::DoNotOptimize(net.run(alg, 20'000));
  }
}
BENCHMARK(BM_greedy_uid_mis)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_luby_mis(benchmark::State& state) {
  Rng rng(3);
  const auto g = random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
  for (auto _ : state) {
    Network net(*g);
    LubyMis alg(99);
    benchmark::DoNotOptimize(net.run(alg, 20'000));
  }
}
BENCHMARK(BM_luby_mis)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_canonical_coloring(benchmark::State& state) {
  Rng rng(3);
  const auto g = random_regular(static_cast<std::size_t>(state.range(0)), 6, rng);
  std::vector<std::uint64_t> uids(g->node_count());
  for (std::size_t i = 0; i < uids.size(); ++i) uids[i] = i * 13 + 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonical_greedy_coloring(*g, uids));
  }
}
BENCHMARK(BM_canonical_coloring)->Arg(200)->Arg(800)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace slocal

int main(int argc, char** argv) {
  slocal::print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
