// Ablations of the design choices DESIGN.md calls out:
//   A1 — RE candidate filtering: right-closed sets vs all subsets (same
//        output, the diagram-based filter is what makes RE scale in |Σ|),
//   A2 — labeling decider: backtracking vs CNF+CDCL as instances grow (the
//        crossover that justifies keeping both),
//   A3 — lift evaluation: implicit ∀/∃ checks vs materialized membership.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/graph/generators.hpp"
#include "src/lift/lift.hpp"
#include "src/problems/classic.hpp"
#include "src/problems/matching_family.hpp"
#include "src/re/round_elimination.hpp"
#include "src/solver/cnf_encoding.hpp"
#include "src/solver/edge_labeling.hpp"
#include "src/util/combinatorics.hpp"
#include "src/util/rng.hpp"

namespace slocal {
namespace {

void print_header() {
  std::printf(
      "\nAblations: A1 RE candidate filter, A2 solver backend, A3 lift eval\n\n");
}

void BM_A1_re_right_closed(benchmark::State& state) {
  const Problem pi = make_matching_problem(static_cast<std::size_t>(state.range(0)), 0, 1);
  REOptions options;
  options.max_configurations = 10'000'000;
  options.right_closed_candidates = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(round_eliminate(pi, options));
  }
}
BENCHMARK(BM_A1_re_right_closed)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_A1_re_all_subsets(benchmark::State& state) {
  const Problem pi = make_matching_problem(static_cast<std::size_t>(state.range(0)), 0, 1);
  REOptions options;
  options.max_configurations = 10'000'000;
  options.right_closed_candidates = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(round_eliminate(pi, options));
  }
}
BENCHMARK(BM_A1_re_all_subsets)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_A2_backtracking(benchmark::State& state) {
  const std::size_t half = static_cast<std::size_t>(state.range(0));
  const BipartiteGraph g = make_bipartite_cycle(half);
  const Problem mm = make_maximal_matching_problem(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_bipartite_labeling(g, mm));
  }
}
BENCHMARK(BM_A2_backtracking)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_A2_cdcl(benchmark::State& state) {
  const std::size_t half = static_cast<std::size_t>(state.range(0));
  const BipartiteGraph g = make_bipartite_cycle(half);
  const Problem mm = make_maximal_matching_problem(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_bipartite_labeling_sat(g, mm));
  }
}
BENCHMARK(BM_A2_cdcl)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_A2_unsat_backtracking(benchmark::State& state) {
  // Unsolvable instance (lift at the miniature contradiction scale):
  // refutation is where CDCL pulls ahead.
  const Problem pi = make_matching_problem(2, 0, 1);
  const LiftedProblem lift(pi, static_cast<std::size_t>(state.range(0)),
                           static_cast<std::size_t>(state.range(0)));
  const auto lifted = lift.materialize();
  const BipartiteGraph support = make_complete_bipartite(
      static_cast<std::size_t>(state.range(0)), static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    bool exhausted = false;
    LabelingOptions options;
    options.node_budget = 20'000'000;
    benchmark::DoNotOptimize(
        solve_bipartite_labeling(support, *lifted, options, &exhausted));
  }
}
BENCHMARK(BM_A2_unsat_backtracking)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_A2_unsat_cdcl(benchmark::State& state) {
  const Problem pi = make_matching_problem(2, 0, 1);
  const LiftedProblem lift(pi, static_cast<std::size_t>(state.range(0)),
                           static_cast<std::size_t>(state.range(0)));
  const auto lifted = lift.materialize();
  const BipartiteGraph support = make_complete_bipartite(
      static_cast<std::size_t>(state.range(0)), static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_bipartite_labeling_sat(support, *lifted));
  }
}
BENCHMARK(BM_A2_unsat_cdcl)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_A3_lift_implicit(benchmark::State& state) {
  const Problem pi = make_matching_problem(3, 1, 1);
  const std::size_t big_delta = static_cast<std::size_t>(state.range(0));
  const LiftedProblem lift(pi, big_delta, 3);
  for (auto _ : state) {
    std::size_t count = 0;
    for_each_multiset(lift.label_sets().size(), big_delta,
                      [&](const std::vector<std::size_t>& pick) {
                        if (lift.white_ok(pick)) ++count;
                        return true;
                      });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_A3_lift_implicit)->Arg(5)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_A3_lift_materialized_lookup(benchmark::State& state) {
  const Problem pi = make_matching_problem(3, 1, 1);
  const std::size_t big_delta = static_cast<std::size_t>(state.range(0));
  const LiftedProblem lift(pi, big_delta, 3);
  const auto explicit_problem = lift.materialize();
  for (auto _ : state) {
    std::size_t count = 0;
    for_each_multiset(lift.label_sets().size(), big_delta,
                      [&](const std::vector<std::size_t>& pick) {
                        std::vector<Label> labels;
                        labels.reserve(pick.size());
                        for (const std::size_t p : pick) {
                          labels.push_back(static_cast<Label>(p));
                        }
                        if (explicit_problem->white().contains(
                                Configuration(std::move(labels)))) {
                          ++count;
                        }
                        return true;
                      });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_A3_lift_materialized_lookup)->Arg(5)->Arg(7)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace slocal

int main(int argc, char** argv) {
  slocal::print_header();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
