file(REMOVE_RECURSE
  "libslocal.a"
)
