# Empty dependencies file for slocal.
# This may be replaced when dependencies are built.
