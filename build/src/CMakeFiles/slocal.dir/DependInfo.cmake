
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bounds/bigint.cpp" "src/CMakeFiles/slocal.dir/bounds/bigint.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/bounds/bigint.cpp.o.d"
  "/root/repo/src/bounds/counting.cpp" "src/CMakeFiles/slocal.dir/bounds/counting.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/bounds/counting.cpp.o.d"
  "/root/repo/src/bounds/derandomization.cpp" "src/CMakeFiles/slocal.dir/bounds/derandomization.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/bounds/derandomization.cpp.o.d"
  "/root/repo/src/bounds/formulas.cpp" "src/CMakeFiles/slocal.dir/bounds/formulas.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/bounds/formulas.cpp.o.d"
  "/root/repo/src/bounds/rulingset_census.cpp" "src/CMakeFiles/slocal.dir/bounds/rulingset_census.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/bounds/rulingset_census.cpp.o.d"
  "/root/repo/src/formalism/configuration.cpp" "src/CMakeFiles/slocal.dir/formalism/configuration.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/formalism/configuration.cpp.o.d"
  "/root/repo/src/formalism/constraint.cpp" "src/CMakeFiles/slocal.dir/formalism/constraint.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/formalism/constraint.cpp.o.d"
  "/root/repo/src/formalism/diagram.cpp" "src/CMakeFiles/slocal.dir/formalism/diagram.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/formalism/diagram.cpp.o.d"
  "/root/repo/src/formalism/label.cpp" "src/CMakeFiles/slocal.dir/formalism/label.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/formalism/label.cpp.o.d"
  "/root/repo/src/formalism/parser.cpp" "src/CMakeFiles/slocal.dir/formalism/parser.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/formalism/parser.cpp.o.d"
  "/root/repo/src/formalism/problem.cpp" "src/CMakeFiles/slocal.dir/formalism/problem.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/formalism/problem.cpp.o.d"
  "/root/repo/src/formalism/relaxation.cpp" "src/CMakeFiles/slocal.dir/formalism/relaxation.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/formalism/relaxation.cpp.o.d"
  "/root/repo/src/graph/bipartite.cpp" "src/CMakeFiles/slocal.dir/graph/bipartite.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/graph/bipartite.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/slocal.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/slocal.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/hypergraph.cpp" "src/CMakeFiles/slocal.dir/graph/hypergraph.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/graph/hypergraph.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "src/CMakeFiles/slocal.dir/graph/metrics.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/graph/metrics.cpp.o.d"
  "/root/repo/src/graph/transforms.cpp" "src/CMakeFiles/slocal.dir/graph/transforms.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/graph/transforms.cpp.o.d"
  "/root/repo/src/lift/lift.cpp" "src/CMakeFiles/slocal.dir/lift/lift.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/lift/lift.cpp.o.d"
  "/root/repo/src/problems/classic.cpp" "src/CMakeFiles/slocal.dir/problems/classic.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/problems/classic.cpp.o.d"
  "/root/repo/src/problems/coloring_family.cpp" "src/CMakeFiles/slocal.dir/problems/coloring_family.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/problems/coloring_family.cpp.o.d"
  "/root/repo/src/problems/matching_family.cpp" "src/CMakeFiles/slocal.dir/problems/matching_family.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/problems/matching_family.cpp.o.d"
  "/root/repo/src/problems/rulingset_family.cpp" "src/CMakeFiles/slocal.dir/problems/rulingset_family.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/problems/rulingset_family.cpp.o.d"
  "/root/repo/src/problems/verifiers.cpp" "src/CMakeFiles/slocal.dir/problems/verifiers.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/problems/verifiers.cpp.o.d"
  "/root/repo/src/re/round_elimination.cpp" "src/CMakeFiles/slocal.dir/re/round_elimination.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/re/round_elimination.cpp.o.d"
  "/root/repo/src/re/sequence.cpp" "src/CMakeFiles/slocal.dir/re/sequence.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/re/sequence.cpp.o.d"
  "/root/repo/src/sat/solver.cpp" "src/CMakeFiles/slocal.dir/sat/solver.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/sat/solver.cpp.o.d"
  "/root/repo/src/sim/algorithms.cpp" "src/CMakeFiles/slocal.dir/sim/algorithms.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/sim/algorithms.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/slocal.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/supported.cpp" "src/CMakeFiles/slocal.dir/sim/supported.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/sim/supported.cpp.o.d"
  "/root/repo/src/solver/cnf_encoding.cpp" "src/CMakeFiles/slocal.dir/solver/cnf_encoding.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/solver/cnf_encoding.cpp.o.d"
  "/root/repo/src/solver/edge_labeling.cpp" "src/CMakeFiles/slocal.dir/solver/edge_labeling.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/solver/edge_labeling.cpp.o.d"
  "/root/repo/src/solver/one_round.cpp" "src/CMakeFiles/slocal.dir/solver/one_round.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/solver/one_round.cpp.o.d"
  "/root/repo/src/solver/s_solution.cpp" "src/CMakeFiles/slocal.dir/solver/s_solution.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/solver/s_solution.cpp.o.d"
  "/root/repo/src/solver/zero_round.cpp" "src/CMakeFiles/slocal.dir/solver/zero_round.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/solver/zero_round.cpp.o.d"
  "/root/repo/src/util/bitset.cpp" "src/CMakeFiles/slocal.dir/util/bitset.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/util/bitset.cpp.o.d"
  "/root/repo/src/util/combinatorics.cpp" "src/CMakeFiles/slocal.dir/util/combinatorics.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/util/combinatorics.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/slocal.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/slocal.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/slocal.dir/util/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
