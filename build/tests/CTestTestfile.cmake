# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/formalism_test[1]_include.cmake")
include("/root/repo/build/tests/diagram_test[1]_include.cmake")
include("/root/repo/build/tests/relaxation_test[1]_include.cmake")
include("/root/repo/build/tests/re_test[1]_include.cmake")
include("/root/repo/build/tests/lift_test[1]_include.cmake")
include("/root/repo/build/tests/sat_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/zero_round_test[1]_include.cmake")
include("/root/repo/build/tests/s_solution_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/bounds_test[1]_include.cmake")
include("/root/repo/build/tests/sequence_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/verifiers_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/one_round_test[1]_include.cmake")
include("/root/repo/build/tests/rulingset_census_test[1]_include.cmake")
include("/root/repo/build/tests/hypergraph_route_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
