# Empty compiler generated dependencies file for formalism_test.
# This may be replaced when dependencies are built.
