file(REMOVE_RECURSE
  "CMakeFiles/formalism_test.dir/formalism_test.cpp.o"
  "CMakeFiles/formalism_test.dir/formalism_test.cpp.o.d"
  "formalism_test"
  "formalism_test.pdb"
  "formalism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formalism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
