# Empty compiler generated dependencies file for verifiers_test.
# This may be replaced when dependencies are built.
