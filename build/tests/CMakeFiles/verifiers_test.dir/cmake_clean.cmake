file(REMOVE_RECURSE
  "CMakeFiles/verifiers_test.dir/verifiers_test.cpp.o"
  "CMakeFiles/verifiers_test.dir/verifiers_test.cpp.o.d"
  "verifiers_test"
  "verifiers_test.pdb"
  "verifiers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifiers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
