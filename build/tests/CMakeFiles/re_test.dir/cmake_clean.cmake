file(REMOVE_RECURSE
  "CMakeFiles/re_test.dir/re_test.cpp.o"
  "CMakeFiles/re_test.dir/re_test.cpp.o.d"
  "re_test"
  "re_test.pdb"
  "re_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
