file(REMOVE_RECURSE
  "CMakeFiles/rulingset_census_test.dir/rulingset_census_test.cpp.o"
  "CMakeFiles/rulingset_census_test.dir/rulingset_census_test.cpp.o.d"
  "rulingset_census_test"
  "rulingset_census_test.pdb"
  "rulingset_census_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulingset_census_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
