# Empty compiler generated dependencies file for rulingset_census_test.
# This may be replaced when dependencies are built.
