file(REMOVE_RECURSE
  "CMakeFiles/zero_round_test.dir/zero_round_test.cpp.o"
  "CMakeFiles/zero_round_test.dir/zero_round_test.cpp.o.d"
  "zero_round_test"
  "zero_round_test.pdb"
  "zero_round_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_round_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
