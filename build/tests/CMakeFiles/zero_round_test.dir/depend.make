# Empty dependencies file for zero_round_test.
# This may be replaced when dependencies are built.
