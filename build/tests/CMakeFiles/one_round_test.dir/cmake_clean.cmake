file(REMOVE_RECURSE
  "CMakeFiles/one_round_test.dir/one_round_test.cpp.o"
  "CMakeFiles/one_round_test.dir/one_round_test.cpp.o.d"
  "one_round_test"
  "one_round_test.pdb"
  "one_round_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_round_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
