file(REMOVE_RECURSE
  "CMakeFiles/hypergraph_route_test.dir/hypergraph_route_test.cpp.o"
  "CMakeFiles/hypergraph_route_test.dir/hypergraph_route_test.cpp.o.d"
  "hypergraph_route_test"
  "hypergraph_route_test.pdb"
  "hypergraph_route_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypergraph_route_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
