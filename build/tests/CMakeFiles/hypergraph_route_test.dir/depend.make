# Empty dependencies file for hypergraph_route_test.
# This may be replaced when dependencies are built.
