# Empty dependencies file for s_solution_test.
# This may be replaced when dependencies are built.
