file(REMOVE_RECURSE
  "CMakeFiles/s_solution_test.dir/s_solution_test.cpp.o"
  "CMakeFiles/s_solution_test.dir/s_solution_test.cpp.o.d"
  "s_solution_test"
  "s_solution_test.pdb"
  "s_solution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s_solution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
