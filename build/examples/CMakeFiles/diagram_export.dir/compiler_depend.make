# Empty compiler generated dependencies file for diagram_export.
# This may be replaced when dependencies are built.
