file(REMOVE_RECURSE
  "CMakeFiles/diagram_export.dir/diagram_export.cpp.o"
  "CMakeFiles/diagram_export.dir/diagram_export.cpp.o.d"
  "diagram_export"
  "diagram_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagram_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
