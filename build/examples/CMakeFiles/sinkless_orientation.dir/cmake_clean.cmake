file(REMOVE_RECURSE
  "CMakeFiles/sinkless_orientation.dir/sinkless_orientation.cpp.o"
  "CMakeFiles/sinkless_orientation.dir/sinkless_orientation.cpp.o.d"
  "sinkless_orientation"
  "sinkless_orientation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinkless_orientation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
