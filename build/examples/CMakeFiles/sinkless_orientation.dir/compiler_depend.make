# Empty compiler generated dependencies file for sinkless_orientation.
# This may be replaced when dependencies are built.
