# Empty dependencies file for slocal_tool.
# This may be replaced when dependencies are built.
