file(REMOVE_RECURSE
  "CMakeFiles/slocal_tool.dir/slocal_tool.cpp.o"
  "CMakeFiles/slocal_tool.dir/slocal_tool.cpp.o.d"
  "slocal_tool"
  "slocal_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slocal_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
