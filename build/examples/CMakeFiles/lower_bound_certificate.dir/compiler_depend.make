# Empty compiler generated dependencies file for lower_bound_certificate.
# This may be replaced when dependencies are built.
