file(REMOVE_RECURSE
  "CMakeFiles/lower_bound_certificate.dir/lower_bound_certificate.cpp.o"
  "CMakeFiles/lower_bound_certificate.dir/lower_bound_certificate.cpp.o.d"
  "lower_bound_certificate"
  "lower_bound_certificate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lower_bound_certificate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
