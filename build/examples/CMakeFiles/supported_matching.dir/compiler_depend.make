# Empty compiler generated dependencies file for supported_matching.
# This may be replaced when dependencies are built.
