file(REMOVE_RECURSE
  "CMakeFiles/supported_matching.dir/supported_matching.cpp.o"
  "CMakeFiles/supported_matching.dir/supported_matching.cpp.o.d"
  "supported_matching"
  "supported_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supported_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
