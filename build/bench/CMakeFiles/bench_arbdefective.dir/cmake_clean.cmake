file(REMOVE_RECURSE
  "CMakeFiles/bench_arbdefective.dir/bench_arbdefective.cpp.o"
  "CMakeFiles/bench_arbdefective.dir/bench_arbdefective.cpp.o.d"
  "bench_arbdefective"
  "bench_arbdefective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arbdefective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
