# Empty compiler generated dependencies file for bench_arbdefective.
# This may be replaced when dependencies are built.
