file(REMOVE_RECURSE
  "CMakeFiles/bench_mis_chromatic.dir/bench_mis_chromatic.cpp.o"
  "CMakeFiles/bench_mis_chromatic.dir/bench_mis_chromatic.cpp.o.d"
  "bench_mis_chromatic"
  "bench_mis_chromatic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mis_chromatic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
