# Empty compiler generated dependencies file for bench_mis_chromatic.
# This may be replaced when dependencies are built.
