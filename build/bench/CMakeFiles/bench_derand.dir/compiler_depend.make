# Empty compiler generated dependencies file for bench_derand.
# This may be replaced when dependencies are built.
