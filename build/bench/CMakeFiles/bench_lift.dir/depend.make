# Empty dependencies file for bench_lift.
# This may be replaced when dependencies are built.
