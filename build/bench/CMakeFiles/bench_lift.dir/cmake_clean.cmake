file(REMOVE_RECURSE
  "CMakeFiles/bench_lift.dir/bench_lift.cpp.o"
  "CMakeFiles/bench_lift.dir/bench_lift.cpp.o.d"
  "bench_lift"
  "bench_lift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
