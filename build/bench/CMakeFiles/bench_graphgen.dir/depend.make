# Empty dependencies file for bench_graphgen.
# This may be replaced when dependencies are built.
