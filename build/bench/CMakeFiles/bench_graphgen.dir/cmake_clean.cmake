file(REMOVE_RECURSE
  "CMakeFiles/bench_graphgen.dir/bench_graphgen.cpp.o"
  "CMakeFiles/bench_graphgen.dir/bench_graphgen.cpp.o.d"
  "bench_graphgen"
  "bench_graphgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graphgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
