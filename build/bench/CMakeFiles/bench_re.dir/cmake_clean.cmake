file(REMOVE_RECURSE
  "CMakeFiles/bench_re.dir/bench_re.cpp.o"
  "CMakeFiles/bench_re.dir/bench_re.cpp.o.d"
  "bench_re"
  "bench_re.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_re.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
