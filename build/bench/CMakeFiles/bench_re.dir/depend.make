# Empty dependencies file for bench_re.
# This may be replaced when dependencies are built.
