# Empty dependencies file for bench_rulingsets.
# This may be replaced when dependencies are built.
