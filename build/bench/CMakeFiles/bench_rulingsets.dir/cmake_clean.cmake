file(REMOVE_RECURSE
  "CMakeFiles/bench_rulingsets.dir/bench_rulingsets.cpp.o"
  "CMakeFiles/bench_rulingsets.dir/bench_rulingsets.cpp.o.d"
  "bench_rulingsets"
  "bench_rulingsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rulingsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
