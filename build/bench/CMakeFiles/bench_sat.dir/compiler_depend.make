# Empty compiler generated dependencies file for bench_sat.
# This may be replaced when dependencies are built.
